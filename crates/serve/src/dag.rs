//! Lowering a compiled rule set into the shared-prefix decision DAG.
//!
//! Rules in a [`nr_rules::RuleSet`] routinely share leading conditions —
//! extraction emits families like `10 <= x < 40 && c = 0` and
//! `10 <= x < 40 && d != 2`. [`lower`] builds a **trie over predicate-id
//! sequences** (in each rule's original condition order): every distinct
//! prefix becomes one node, so rules sharing `10 <= x < 40` evaluate it
//! once and branch from the same node. Nodes are materialized as bitmap
//! registers (`node = parent & predicate`), and the trie flattens into
//! the branch-free op list of [`crate::program::DagProgram`]:
//!
//! * predicates group by column into **fused sweeps**, each emitted at
//!   the first point any of its predicates is needed (rule order), so
//!   the old engine's laziness survives at column granularity — a batch
//!   fully decided by early rules never sweeps the columns only later
//!   rules touch;
//! * each trie node gets one `And` op, emitted once no matter how many
//!   rules pass through it;
//! * each rule becomes one `Claim` op in rule order — first-match
//!   priority is arbitration order, so prefix sharing can never change
//!   which rule wins a row (the equivalence suite pins this
//!   bit-identically against `RuleSet::predict_row`);
//! * rules with a contradictory predicate (`lo >= hi`: statically empty)
//!   are elided entirely; an empty-antecedent rule claims every
//!   remaining row and terminates lowering (later rules are
//!   unreachable, exactly like the interpreted `find`).
//!
//! The same hash-keyed predicate identity ([`PredKey`]) also backs
//! [`PredicateInterner`], which `CompiledRules::compile` uses to dedup
//! conditions in O(conditions) instead of the old
//! O(rules × conditions × predicates) linear rescan — compile time is on
//! the hot path now that the daemon recompiles on every hot swap.

use std::collections::HashMap;

use nr_rules::Condition;
use nr_tabular::ClassId;

use crate::compiled::CompiledRule;
use crate::program::{ColumnSweep, DagProgram, NomTest, NumTest, Op};

/// Hashable identity of a [`Condition`]. Float bounds are keyed by bit
/// pattern (`f64::to_bits`), which distinguishes `0.0` from `-0.0` and
/// unifies identical NaNs — either way, conditions with equal keys
/// evaluate identically on every input, which is all dedup needs.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) enum PredKey {
    /// An interval condition (`Condition::Num`).
    Num {
        /// Schema attribute index.
        attribute: usize,
        /// Lower bound bits, if bounded below.
        lo: Option<u64>,
        /// Upper bound bits, if bounded above.
        hi: Option<u64>,
    },
    /// `Condition::NumEq`.
    NumEq {
        /// Schema attribute index.
        attribute: usize,
        /// The compared value's bits.
        bits: u64,
    },
    /// `Condition::CatEq`.
    CatEq {
        /// Schema attribute index.
        attribute: usize,
        /// The matched code.
        code: u32,
    },
    /// `Condition::CatNotIn`.
    CatNotIn {
        /// Schema attribute index.
        attribute: usize,
        /// The excluded codes, ascending (the set's iteration order).
        codes: Vec<u32>,
    },
}

impl PredKey {
    /// The key of a condition.
    pub(crate) fn of(cond: &Condition) -> PredKey {
        match cond {
            Condition::Num { attribute, lo, hi } => PredKey::Num {
                attribute: *attribute,
                lo: lo.map(f64::to_bits),
                hi: hi.map(f64::to_bits),
            },
            Condition::NumEq { attribute, value } => PredKey::NumEq {
                attribute: *attribute,
                bits: value.to_bits(),
            },
            Condition::CatEq { attribute, code } => PredKey::CatEq {
                attribute: *attribute,
                code: *code,
            },
            Condition::CatNotIn { attribute, codes } => PredKey::CatNotIn {
                attribute: *attribute,
                codes: codes.iter().copied().collect(),
            },
        }
    }
}

/// Hash-keyed predicate table builder: `intern` is O(1) amortized per
/// condition, against the old `Vec::position` linear rescan.
#[derive(Debug, Default)]
pub(crate) struct PredicateInterner {
    table: Vec<Condition>,
    index: HashMap<PredKey, u32>,
}

impl PredicateInterner {
    /// The id of `cond`, inserting it on first sight.
    pub(crate) fn intern(&mut self, cond: &Condition) -> u32 {
        *self.index.entry(PredKey::of(cond)).or_insert_with(|| {
            let id = u32::try_from(self.table.len()).expect("predicate table fits in u32");
            self.table.push(cond.clone());
            id
        })
    }

    /// The finished predicate table.
    pub(crate) fn into_table(self) -> Vec<Condition> {
        self.table
    }
}

/// The column a predicate sweeps, as a grouping key (numeric and nominal
/// attributes index different column arrays, so the type tag is part of
/// the key).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum ColKey {
    Num(usize),
    Nom(usize),
}

/// How one predicate executes: as a test inside a fused column sweep, or
/// as a constant-true register fill (an unbounded interval).
enum PredPlan {
    Sweep(ColKey),
    AlwaysTrue,
}

/// Classifies a condition for lowering; `None` means statically false
/// (a contradictory interval — rules containing one are elided).
fn plan_predicate(cond: &Condition) -> Option<PredPlan> {
    if cond.is_contradiction() {
        return None;
    }
    Some(match cond {
        Condition::Num {
            lo: None, hi: None, ..
        } => PredPlan::AlwaysTrue,
        Condition::Num { attribute, .. } | Condition::NumEq { attribute, .. } => {
            PredPlan::Sweep(ColKey::Num(*attribute))
        }
        Condition::CatEq { attribute, .. } | Condition::CatNotIn { attribute, .. } => {
            PredPlan::Sweep(ColKey::Nom(*attribute))
        }
    })
}

/// The sweep test for a non-tautological, non-contradictory condition.
fn sweep_test(cond: &Condition) -> SweepTest {
    match cond {
        Condition::Num { lo, hi, .. } => match (*lo, *hi) {
            (Some(l), Some(h)) => SweepTest::Num(NumTest::Range(l, h)),
            (Some(l), None) => SweepTest::Num(NumTest::Ge(l)),
            (None, Some(h)) => SweepTest::Num(NumTest::Lt(h)),
            (None, None) => unreachable!("tautologies are planned as AlwaysTrue"),
        },
        Condition::NumEq { value, .. } => SweepTest::Num(NumTest::Eq(*value)),
        Condition::CatEq { code, .. } => SweepTest::Nom(NomTest::Eq(*code)),
        Condition::CatNotIn { codes, .. } => {
            SweepTest::Nom(NomTest::NotIn(codes.iter().copied().collect()))
        }
    }
}

enum SweepTest {
    Num(NumTest),
    Nom(NomTest),
}

/// A trie node: a distinct predicate-id prefix shared by every rule whose
/// antecedent starts with it.
struct TrieNode {
    /// Register holding the node's row set.
    reg: u32,
    /// How many rules pass through this node (sharing statistic).
    uses: usize,
}

/// Lowers the predicate table + rule list into a [`DagProgram`]. See the
/// module docs for the shape of the output.
pub(crate) fn lower(
    predicates: &[Condition],
    rules: &[CompiledRule],
    default_class: ClassId,
) -> DagProgram {
    Lowering::new(predicates, default_class).run(rules)
}

/// Per-column accumulated sweep group, while lowering.
struct SweepGroup {
    key: ColKey,
    tests: Vec<(u32, SweepTest)>,
    /// Position in the op list where this sweep was first needed;
    /// `usize::MAX` until emitted.
    emitted_at: usize,
}

struct Lowering<'a> {
    predicates: &'a [Condition],
    default_class: ClassId,
    /// Predicate id → register, assigned on first use.
    pred_reg: HashMap<u32, u32>,
    /// Column → index into `groups`.
    group_of: HashMap<ColKey, usize>,
    groups: Vec<SweepGroup>,
    /// `(parent register, predicate id)` → trie node.
    trie: HashMap<(Option<u32>, u32), usize>,
    nodes: Vec<TrieNode>,
    ops: Vec<Op>,
    n_regs: u32,
}

impl<'a> Lowering<'a> {
    fn new(predicates: &'a [Condition], default_class: ClassId) -> Self {
        Lowering {
            predicates,
            default_class,
            pred_reg: HashMap::new(),
            group_of: HashMap::new(),
            groups: Vec::new(),
            trie: HashMap::new(),
            nodes: Vec::new(),
            ops: Vec::new(),
            n_regs: 0,
        }
    }

    fn fresh_reg(&mut self) -> u32 {
        let r = self.n_regs;
        self.n_regs += 1;
        r
    }

    /// The register holding predicate `p`'s bitmap, materializing it on
    /// first use: tautologies emit a `Fill`, sweep tests join their
    /// column's group (the group's `Sweep` op is emitted — once — at the
    /// first point any of its predicates is needed; predicates joining
    /// after that are appended to the group, which executes before any
    /// op that reads them because def sites only move earlier).
    fn pred_register(&mut self, p: u32) -> u32 {
        if let Some(&reg) = self.pred_reg.get(&p) {
            return reg;
        }
        let cond = &self.predicates[p as usize];
        let plan = plan_predicate(cond).expect("contradictory rules are elided before lowering");
        let reg = self.fresh_reg();
        self.pred_reg.insert(p, reg);
        match plan {
            PredPlan::AlwaysTrue => self.ops.push(Op::Fill(reg)),
            PredPlan::Sweep(key) => {
                let gi = *self.group_of.entry(key).or_insert_with(|| {
                    self.groups.push(SweepGroup {
                        key,
                        tests: Vec::new(),
                        emitted_at: usize::MAX,
                    });
                    self.groups.len() - 1
                });
                self.groups[gi].tests.push((reg, sweep_test(cond)));
                if self.groups[gi].emitted_at == usize::MAX {
                    self.groups[gi].emitted_at = self.ops.len();
                    self.ops.push(Op::Sweep(gi as u32));
                }
            }
        }
        reg
    }

    fn run(mut self, rules: &[CompiledRule]) -> DagProgram {
        'rules: for rule in rules {
            // A statically-false predicate anywhere makes the rule
            // unreachable: skip it before allocating registers.
            if rule
                .predicates
                .iter()
                .any(|&p| plan_predicate(&self.predicates[p as usize]).is_none())
            {
                continue;
            }
            if rule.predicates.is_empty() {
                // Matches every row: claims the entire remainder; later
                // rules can never first-match (the interpreted `find`
                // stops here too).
                self.ops.push(Op::ClaimRest { class: rule.class });
                break 'rules;
            }
            // Walk (and extend) the trie along the rule's predicate
            // sequence, emitting each new node's And exactly once.
            let mut prefix: Option<u32> = None; // parent node's register
            for &p in &rule.predicates {
                let parent = prefix;
                let node_idx = match self.trie.get(&(parent, p)) {
                    Some(&idx) => {
                        self.nodes[idx].uses += 1;
                        idx
                    }
                    None => {
                        let pred = self.pred_register(p);
                        let reg = match parent {
                            // Depth 1: the node *is* the predicate.
                            None => pred,
                            Some(parent_reg) => {
                                let dst = self.fresh_reg();
                                self.ops.push(Op::And {
                                    dst,
                                    a: parent_reg,
                                    b: pred,
                                });
                                dst
                            }
                        };
                        self.nodes.push(TrieNode { reg, uses: 1 });
                        self.trie.insert((parent, p), self.nodes.len() - 1);
                        self.nodes.len() - 1
                    }
                };
                prefix = Some(self.nodes[node_idx].reg);
            }
            self.ops.push(Op::Claim {
                src: prefix.expect("non-empty antecedent has a leaf node"),
                class: rule.class,
            });
        }

        let n_nodes = self.nodes.len();
        let n_shared_nodes = self.nodes.iter().filter(|n| n.uses > 1).count();
        let sweeps = self
            .groups
            .into_iter()
            .map(|g| {
                let (num, nom): (Vec<_>, Vec<_>) = g
                    .tests
                    .into_iter()
                    .partition(|(_, t)| matches!(t, SweepTest::Num(_)));
                match g.key {
                    ColKey::Num(attribute) => ColumnSweep::num(
                        attribute,
                        num.into_iter()
                            .map(|(reg, t)| match t {
                                SweepTest::Num(t) => (reg, t),
                                SweepTest::Nom(_) => unreachable!("numeric group"),
                            })
                            .collect(),
                    ),
                    ColKey::Nom(attribute) => ColumnSweep::Nom {
                        attribute,
                        tests: nom
                            .into_iter()
                            .map(|(reg, t)| match t {
                                SweepTest::Nom(t) => (reg, t),
                                SweepTest::Num(_) => unreachable!("nominal group"),
                            })
                            .collect(),
                    },
                }
            })
            .collect();
        DagProgram {
            default_class: self.default_class,
            n_regs: self.n_regs,
            sweeps,
            ops: self.ops,
            n_nodes,
            n_shared_nodes,
        }
    }
}
