//! Serving layer: compile a fitted NeuroRule model into immutable,
//! `Arc`-shareable batch-scoring engines.
//!
//! The paper's §1 pitch is that extracted rules are *cheap to apply to
//! large databases*. This crate makes that operational:
//!
//! * [`CompiledRules`] lowers a [`nr_rules::RuleSet`] into a deduplicated
//!   predicate table and a shared-prefix decision DAG, executed as a
//!   branch-free bitmap program with fused per-column sweeps; batches of
//!   [`parallel_row_threshold`] rows or more shard across the shared
//!   worker pool — first-match semantics resolved per batch,
//!   bit-identical to the interpreted `RuleSet::predict_row` path at any
//!   thread count;
//! * [`NetworkScorer`] packages encoder + pruned MLP behind the same
//!   batch [`Predictor`](nr_rules::Predictor) trait, riding the matrix
//!   kernels in `nr-nn`;
//! * [`ServeModel`] bundles both behind a [`ServeMode`] dispatch (rules /
//!   network / hybrid rules-with-network-fallback) with JSON save/load,
//!   so a serving process starts from a file — no retraining, no
//!   recompilation.
//!
//! Every engine is immutable after construction and holds no interior
//! mutability: wrap one in an `Arc` and score from any number of threads
//! with results bit-identical to single-threaded runs.
//!
//! ```no_run
//! use nr_rules::Predictor;
//! use nr_serve::{ServeModel, ServeMode};
//! # let (ruleset, encoder, network): (nr_rules::RuleSet, nr_encode::Encoder, nr_nn::Mlp) = todo!();
//! # let database: nr_tabular::Dataset = todo!();
//!
//! let model = ServeModel::new(&ruleset, encoder, network, ServeMode::Rules);
//! model.save("model.json").unwrap();
//! let served = std::sync::Arc::new(ServeModel::load("model.json").unwrap());
//! let classes = served.predict_batch(&database.view());
//! ```

#![deny(missing_docs)]

mod api;
mod bitmap;
mod compiled;
mod dag;
mod model;
mod program;
pub mod registry;
mod scorer;
mod swap;

pub use api::{BulkResponse, ErrorResponse, ModelInfo, PredictResponse, SwapResponse};
pub use compiled::{parallel_row_threshold, CompiledRules};
pub use model::{ServeError, ServeMode, ServeModel};
pub use registry::{bundle_file_name, ModelRegistry, RegistryEntry, DEFAULT_RETAIN};
pub use scorer::NetworkScorer;
pub use swap::{ModelHandle, VersionedModel};
