//! Tabular data model for the NeuroRule reproduction.
//!
//! The paper frames classification over relational tuples: a training set of
//! `(a_1, …, a_n, c_k)` tuples where each `a_i` comes from the domain of
//! attribute `A_i` and `c_k` is one of `m` class labels. This crate provides
//! that substrate: [`Schema`] describes the attributes, [`Value`] holds one
//! attribute value, [`Dataset`] holds labeled tuples in **typed columns**
//! (one `Vec<f64>`/`Vec<u32>` per attribute), [`DatasetView`] selects rows
//! without copying them, and helpers cover the usual chores (splits, class
//! distributions, streaming CSV ingest).
//!
//! Everything downstream — the synthetic generator (`nr-datagen`), the binary
//! encoder (`nr-encode`), the C4.5 baseline (`nr-tree`) and the NeuroRule
//! pipeline itself (`neurorule`) — speaks this data model.
//!
//! # Example
//!
//! ```
//! use nr_tabular::{Attribute, Schema, Dataset, Value};
//!
//! let schema = Schema::new(vec![
//!     Attribute::numeric("age"),
//!     Attribute::nominal("color", ["red", "green", "blue"]),
//! ]);
//! let mut ds = Dataset::new(schema, vec!["yes".into(), "no".into()]);
//! ds.push(vec![Value::Num(34.0), Value::Nominal(1)], 0).unwrap();
//! ds.push(vec![Value::Num(61.5), Value::Nominal(2)], 1).unwrap();
//! assert_eq!(ds.len(), 2);
//! assert_eq!(ds.class_distribution(), vec![1, 1]);
//! ```

#![deny(missing_docs)]

mod buf;
mod csv;
mod cv;
mod dataset;
mod schema;
mod value;
mod view;

pub use buf::{Buf, SliceSource};
pub use csv::{
    parse_csv_block, parse_csv_cell, parse_row, read_csv, read_csv_streaming, write_csv,
    write_csv_header, write_csv_rows,
};
pub use cv::{stratified_kfold, stratified_split};
pub use dataset::{ClassId, Column, Dataset, SplitMethod};
pub use schema::{AttrKind, Attribute, Schema};
pub use value::Value;
pub use view::{DatasetView, RowIdIter};

/// Errors produced by the tabular data model.
#[derive(Debug, Clone, PartialEq)]
pub enum TabularError {
    /// A row had a different number of values than the schema has attributes.
    ArityMismatch {
        /// Number of attributes the schema declares.
        expected: usize,
        /// Number of values the offending row carried.
        got: usize,
    },
    /// A value's type did not match the attribute kind at its position.
    TypeMismatch {
        /// Index of the offending attribute.
        attribute: usize,
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// A class id was out of range for the dataset's class list.
    UnknownClass(usize),
    /// A nominal code was out of range for the attribute's category list.
    UnknownCategory {
        /// Index of the offending attribute.
        attribute: usize,
        /// The out-of-range code.
        code: u32,
    },
    /// A row collection and a label collection had different lengths.
    RowLabelCountMismatch {
        /// Number of rows supplied.
        rows: usize,
        /// Number of labels supplied.
        labels: usize,
    },
    /// CSV parsing failed at the given 1-based line (0 = not line-specific).
    Csv {
        /// 1-based line number of the offending input line (the header is
        /// line 1); 0 when the failure is not tied to one line.
        line: usize,
        /// Human-readable description of the failure.
        msg: String,
    },
}

impl std::fmt::Display for TabularError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TabularError::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "row has {got} values but schema has {expected} attributes"
                )
            }
            TabularError::TypeMismatch { attribute, detail } => {
                write!(f, "type mismatch at attribute {attribute}: {detail}")
            }
            TabularError::UnknownClass(c) => write!(f, "class id {c} out of range"),
            TabularError::UnknownCategory { attribute, code } => {
                write!(
                    f,
                    "nominal code {code} out of range for attribute {attribute}"
                )
            }
            TabularError::RowLabelCountMismatch { rows, labels } => {
                write!(f, "{rows} rows but {labels} labels")
            }
            TabularError::Csv { line: 0, msg } => write!(f, "csv error: {msg}"),
            TabularError::Csv { line, msg } => write!(f, "csv error at line {line}: {msg}"),
        }
    }
}

impl std::error::Error for TabularError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TabularError>;
