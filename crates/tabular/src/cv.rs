//! Stratified splitting and cross-validation folds.
//!
//! The paper evaluates on one train/test pair; a production library also
//! needs stratified splits (class ratios preserved — important with skewed
//! functions like F8/F10) and k-fold cross-validation for model selection.
//!
//! Both helpers return [`DatasetView`]s: a fold is a row-index selection
//! over the shared columnar dataset, so building `k` folds costs `k` index
//! vectors — the column data is never cloned. Call
//! [`DatasetView::materialize`] when an owned [`Dataset`] is genuinely
//! needed.

use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::{Dataset, DatasetView};

/// Splits `ds` into `(head, tail)` views with `head_fraction` of every
/// class in the head split (stratified). Deterministic for a given seed.
pub fn stratified_split(
    ds: &Dataset,
    head_fraction: f64,
    seed: u64,
) -> (DatasetView<'_>, DatasetView<'_>) {
    assert!(
        (0.0..=1.0).contains(&head_fraction),
        "fraction must be within [0,1], got {head_fraction}"
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut head_idx = Vec::new();
    let mut tail_idx = Vec::new();
    for class in 0..ds.n_classes() {
        let mut members: Vec<usize> = (0..ds.len()).filter(|&i| ds.label(i) == class).collect();
        members.shuffle(&mut rng);
        let cut = (members.len() as f64 * head_fraction).round() as usize;
        head_idx.extend_from_slice(&members[..cut]);
        tail_idx.extend_from_slice(&members[cut..]);
    }
    head_idx.sort_unstable();
    tail_idx.sort_unstable();
    (ds.view_of(head_idx), ds.view_of(tail_idx))
}

/// K-fold cross-validation: yields `(train, validation)` view pairs
/// covering the dataset, stratified per class. Deterministic for a given
/// seed.
pub fn stratified_kfold(
    ds: &Dataset,
    k: usize,
    seed: u64,
) -> Vec<(DatasetView<'_>, DatasetView<'_>)> {
    assert!(k >= 2, "need at least two folds");
    assert!(ds.len() >= k, "need at least one row per fold");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);

    // Assign each row to a fold, round-robin within each class after a
    // shuffle — this keeps the folds' class ratios close to the dataset's.
    let mut fold_of = vec![0usize; ds.len()];
    for class in 0..ds.n_classes() {
        let mut members: Vec<usize> = (0..ds.len()).filter(|&i| ds.label(i) == class).collect();
        members.shuffle(&mut rng);
        for (j, &row) in members.iter().enumerate() {
            fold_of[row] = j % k;
        }
    }

    (0..k)
        .map(|fold| {
            let train: Vec<usize> = (0..ds.len()).filter(|&i| fold_of[i] != fold).collect();
            let val: Vec<usize> = (0..ds.len()).filter(|&i| fold_of[i] == fold).collect();
            (ds.view_of(train), ds.view_of(val))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Attribute, Schema, Value};

    fn skewed(n: usize) -> Dataset {
        // 80% class 0, 20% class 1.
        let schema = Schema::new(vec![Attribute::numeric("x")]);
        let mut ds = Dataset::new(schema, vec!["A".into(), "B".into()]);
        for i in 0..n {
            ds.push(vec![Value::Num(i as f64)], usize::from(i % 5 == 0))
                .unwrap();
        }
        ds
    }

    fn ids(v: &DatasetView<'_>) -> Vec<usize> {
        v.iter_ids().collect()
    }

    #[test]
    fn stratified_split_preserves_ratios() {
        let ds = skewed(100);
        let (head, tail) = stratified_split(&ds, 0.7, 42);
        assert_eq!(head.len() + tail.len(), 100);
        // 80/20 in both splits (rounded).
        let head_dist = head.class_distribution();
        assert_eq!(head_dist[0], 56);
        assert_eq!(head_dist[1], 14);
        let tail_dist = tail.class_distribution();
        assert_eq!(tail_dist[0], 24);
        assert_eq!(tail_dist[1], 6);
    }

    #[test]
    fn stratified_split_deterministic() {
        let ds = skewed(60);
        let a = stratified_split(&ds, 0.5, 7);
        let b = stratified_split(&ds, 0.5, 7);
        assert_eq!(ids(&a.0), ids(&b.0));
        assert_eq!(ids(&a.1), ids(&b.1));
        let c = stratified_split(&ds, 0.5, 8);
        assert_ne!(ids(&a.0), ids(&c.0));
    }

    #[test]
    fn split_views_are_zero_copy_and_materializable() {
        let ds = skewed(40);
        let (head, tail) = stratified_split(&ds, 0.5, 3);
        // Views share the dataset's columns.
        assert!(std::ptr::eq(head.dataset(), &ds));
        assert!(std::ptr::eq(tail.dataset(), &ds));
        // Materializing yields owned datasets with the same content.
        let owned = head.materialize();
        assert_eq!(owned.len(), head.len());
        assert_eq!(
            owned.num_column(0),
            head.num_column(0).collect::<Vec<_>>().as_slice()
        );
    }

    #[test]
    fn kfold_partitions_everything() {
        let ds = skewed(50);
        let folds = stratified_kfold(&ds, 5, 3);
        assert_eq!(folds.len(), 5);
        let mut total_val = 0usize;
        for (train, val) in &folds {
            assert_eq!(train.len() + val.len(), 50);
            total_val += val.len();
            // Folds keep the skew roughly: 80/20 ± rounding.
            let dist = val.class_distribution();
            assert!(dist[1] >= 1, "every fold should see the minority class");
        }
        assert_eq!(
            total_val, 50,
            "validation folds must cover the dataset once"
        );
    }

    #[test]
    fn kfold_deterministic() {
        let ds = skewed(30);
        let a = stratified_kfold(&ds, 3, 1);
        let b = stratified_kfold(&ds, 3, 1);
        for ((ta, va), (tb, vb)) in a.iter().zip(&b) {
            assert_eq!(ids(ta), ids(tb));
            assert_eq!(ids(va), ids(vb));
        }
    }

    #[test]
    #[should_panic(expected = "two folds")]
    fn kfold_rejects_k1() {
        stratified_kfold(&skewed(10), 1, 0);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn split_rejects_bad_fraction() {
        stratified_split(&skewed(10), 1.5, 0);
    }
}
