//! Column storage that is either owned or borrowed from a shared source.
//!
//! The columnar [`crate::Dataset`] historically owned every buffer as a
//! `Vec`. Out-of-core segments (the `nr-store` crate) need the same
//! dataset — and therefore the same [`crate::DatasetView`] surface every
//! consumer crate already speaks — over buffers that live in a
//! memory-mapped spill file instead of the heap. [`Buf`] is that seam: a
//! typed buffer that is either an owned `Vec<T>` or a zero-copy window
//! into an `Arc`-shared [`SliceSource`] (e.g. one column region of a
//! mapped segment file).
//!
//! Reads go through `Deref<Target = [T]>`, so every existing column scan
//! compiles unchanged. Mutation goes through [`Buf::make_mut`], which is
//! copy-on-write: mutating a shared buffer first materializes it as an
//! owned `Vec` — immutable mapped segments are never written through, and
//! the ordinary in-RAM construction paths (`push`, `append_columns`) pay
//! nothing because they start owned.

use std::ops::Deref;
use std::sync::Arc;

use serde::ser::SerializeSeq;
use serde::{Deserialize, Deserializer, Serialize, Serializer};

/// A typed read-only slice provider backing a [`Buf::Shared`] buffer.
///
/// Implementors hand out a stable slice for as long as they live (the
/// `Arc` in [`Buf::Shared`] keeps them alive as long as any buffer view
/// does). The canonical implementor is `nr-store`'s mapped segment
/// region; tests use plain `Vec` wrappers.
pub trait SliceSource<T>: Send + Sync + std::fmt::Debug {
    /// The full backing slice.
    fn slice(&self) -> &[T];
}

/// A `Vec` is the trivial slice source (used by tests and by callers that
/// want shared ownership without a mapping).
impl<T: Send + Sync + std::fmt::Debug> SliceSource<T> for Vec<T> {
    fn slice(&self) -> &[T] {
        self
    }
}

/// An owned-or-shared typed buffer. See the module docs.
pub enum Buf<T> {
    /// The ordinary heap-owned buffer (every mutating path stays here).
    Owned(Vec<T>),
    /// A window `[offset, offset + len)` into a shared source — e.g. one
    /// column of a memory-mapped segment file.
    Shared {
        /// The backing source, shared with every sibling column of the
        /// same segment.
        source: Arc<dyn SliceSource<T>>,
        /// Start of this buffer's window in [`SliceSource::slice`].
        offset: usize,
        /// Length of the window.
        len: usize,
    },
}

impl<T> Buf<T> {
    /// An empty owned buffer.
    pub fn new() -> Self {
        Buf::Owned(Vec::new())
    }

    /// An owned buffer with reserved capacity.
    pub fn with_capacity(n: usize) -> Self {
        Buf::Owned(Vec::with_capacity(n))
    }

    /// Wraps a window of a shared source without copying. Panics when the
    /// window is out of the source's bounds.
    pub fn shared(source: Arc<dyn SliceSource<T>>, offset: usize, len: usize) -> Self {
        assert!(
            offset
                .checked_add(len)
                .is_some_and(|end| end <= source.slice().len()),
            "shared buffer window [{offset}, {offset}+{len}) out of source bounds {}",
            source.slice().len()
        );
        Buf::Shared {
            source,
            offset,
            len,
        }
    }

    /// The buffer contents as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        match self {
            Buf::Owned(v) => v,
            Buf::Shared {
                source,
                offset,
                len,
            } => &source.slice()[*offset..offset + len],
        }
    }

    /// True when this buffer borrows a shared source (i.e. reads are
    /// zero-copy out of a mapped or otherwise shared region).
    pub fn is_shared(&self) -> bool {
        matches!(self, Buf::Shared { .. })
    }
}

impl<T: Clone> Buf<T> {
    /// The owned `Vec`, materializing a shared buffer on first mutation
    /// (copy-on-write). Owned buffers return themselves untouched.
    pub fn make_mut(&mut self) -> &mut Vec<T> {
        if let Buf::Shared { .. } = self {
            *self = Buf::Owned(self.as_slice().to_vec());
        }
        match self {
            Buf::Owned(v) => v,
            Buf::Shared { .. } => unreachable!("materialized above"),
        }
    }

    /// Appends one value (copy-on-write for shared buffers).
    pub fn push(&mut self, value: T) {
        self.make_mut().push(value);
    }

    /// Appends every value of an iterator (copy-on-write for shared
    /// buffers).
    pub fn extend<I: IntoIterator<Item = T>>(&mut self, values: I) {
        self.make_mut().extend(values);
    }

    /// Reserves capacity for `additional` more values (copy-on-write for
    /// shared buffers).
    pub fn reserve(&mut self, additional: usize) {
        self.make_mut().reserve(additional);
    }

    /// The contents as an owned `Vec` — moves out of owned buffers,
    /// copies out of shared ones.
    pub fn into_vec(self) -> Vec<T> {
        match self {
            Buf::Owned(v) => v,
            Buf::Shared { .. } => self.as_slice().to_vec(),
        }
    }
}

impl<T: Clone> IntoIterator for Buf<T> {
    type Item = T;
    type IntoIter = std::vec::IntoIter<T>;

    fn into_iter(self) -> Self::IntoIter {
        self.into_vec().into_iter()
    }
}

impl<T> Deref for Buf<T> {
    type Target = [T];

    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T> Default for Buf<T> {
    fn default() -> Self {
        Buf::new()
    }
}

impl<T> From<Vec<T>> for Buf<T> {
    fn from(v: Vec<T>) -> Self {
        Buf::Owned(v)
    }
}

impl<T: Clone> Clone for Buf<T> {
    fn clone(&self) -> Self {
        match self {
            Buf::Owned(v) => Buf::Owned(v.clone()),
            // Cloning a shared buffer clones the handle, not the data —
            // a cloned mapped dataset stays zero-copy.
            Buf::Shared {
                source,
                offset,
                len,
            } => Buf::Shared {
                source: Arc::clone(source),
                offset: *offset,
                len: *len,
            },
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Buf<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Content debug (not provenance): a mapped dataset prints like an
        // owned one, which is what test-failure diffs want.
        f.debug_list().entries(self.as_slice()).finish()
    }
}

/// Equality is by contents — an mmap-backed buffer equals its in-RAM
/// twin, which is exactly what the spill equivalence tests assert.
impl<T: PartialEq> PartialEq for Buf<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Serialize> Serialize for Buf<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        // As a plain sequence, indistinguishable from Vec<T> on the wire:
        // pre-Buf JSON artifacts load unchanged, and a mapped dataset
        // round-trips to an owned one.
        let slice = self.as_slice();
        let mut seq = serializer.serialize_seq(Some(slice.len()))?;
        for v in slice {
            seq.serialize_element(v)?;
        }
        seq.end()
    }
}

impl<'de, T> Deserialize<'de> for Buf<T>
where
    Vec<T>: Deserialize<'de>,
{
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        Vec::<T>::deserialize(d).map(Buf::Owned)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owned_roundtrip_and_mutation() {
        let mut b: Buf<f64> = vec![1.0, 2.0].into();
        assert_eq!(&b[..], &[1.0, 2.0]);
        b.push(3.0);
        assert_eq!(b.len(), 3);
        assert!(!b.is_shared());
    }

    #[test]
    fn shared_reads_without_copying_and_cow_on_write() {
        let source: Arc<dyn SliceSource<u32>> = Arc::new(vec![10u32, 11, 12, 13]);
        let mut b = Buf::shared(Arc::clone(&source), 1, 2);
        assert!(b.is_shared());
        assert_eq!(&b[..], &[11, 12]);
        // Mutation detaches: the source is untouched.
        b.push(99);
        assert!(!b.is_shared());
        assert_eq!(&b[..], &[11, 12, 99]);
        assert_eq!(source.slice(), &[10, 11, 12, 13]);
    }

    #[test]
    #[should_panic(expected = "out of source bounds")]
    fn shared_window_bounds_are_checked() {
        let source: Arc<dyn SliceSource<u32>> = Arc::new(vec![1u32, 2]);
        let _ = Buf::shared(source, 1, 2);
    }

    #[test]
    fn equality_is_by_contents() {
        let owned: Buf<f64> = vec![1.0, 2.0].into();
        let shared = Buf::shared(Arc::new(vec![0.0, 1.0, 2.0]), 1, 2);
        assert_eq!(owned, shared);
        assert_ne!(owned, Buf::from(vec![1.0]));
    }

    #[test]
    fn clone_of_shared_is_still_shared() {
        let b = Buf::shared(Arc::new(vec![5u32; 4]), 0, 4);
        let c = b.clone();
        assert!(c.is_shared());
        assert_eq!(b, c);
    }

    #[test]
    fn serde_roundtrips_to_owned() {
        let shared: Buf<f64> = Buf::shared(Arc::new(vec![1.5, -2.0]), 0, 2);
        let json = serde_json::to_string(&shared).unwrap();
        assert_eq!(json, "[1.5,-2.0]");
        let back: Buf<f64> = serde_json::from_str(&json).unwrap();
        assert!(!back.is_shared());
        assert_eq!(back, shared);
    }
}
