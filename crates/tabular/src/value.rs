//! A single attribute value.

use serde::{Deserialize, Serialize};

/// One attribute value of a tuple.
///
/// Values are deliberately small and `Copy`: datasets store millions of them
/// and the training hot loops read them densely. Nominal categories are
/// stored as integer codes; the attribute's [`crate::Attribute`] maps codes
/// back to names for display.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// A numeric (continuous or ordered-discrete) value.
    Num(f64),
    /// A nominal category code.
    Nominal(u32),
}

impl Value {
    /// Returns the numeric payload, or `None` for nominal values.
    #[inline]
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            Value::Nominal(_) => None,
        }
    }

    /// Returns the nominal code, or `None` for numeric values.
    #[inline]
    pub fn as_nominal(&self) -> Option<u32> {
        match self {
            Value::Num(_) => None,
            Value::Nominal(c) => Some(*c),
        }
    }

    /// Numeric payload, panicking on nominal values.
    ///
    /// Use only where the schema guarantees a numeric attribute (internal
    /// hot paths after validation).
    #[inline]
    pub fn expect_num(&self) -> f64 {
        self.as_num().expect("expected numeric value")
    }

    /// Nominal code, panicking on numeric values.
    #[inline]
    pub fn expect_nominal(&self) -> u32 {
        self.as_nominal().expect("expected nominal value")
    }

    /// True if this is a numeric value.
    #[inline]
    pub fn is_num(&self) -> bool {
        matches!(self, Value::Num(_))
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Num(x)
    }
}

impl From<u32> for Value {
    fn from(c: u32) -> Self {
        Value::Nominal(c)
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Num(x) => write!(f, "{x}"),
            Value::Nominal(c) => write!(f, "#{c}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_roundtrip() {
        let v = Value::Num(3.5);
        assert_eq!(v.as_num(), Some(3.5));
        assert_eq!(v.as_nominal(), None);
        assert!(v.is_num());
        let c = Value::Nominal(7);
        assert_eq!(c.as_nominal(), Some(7));
        assert_eq!(c.as_num(), None);
        assert!(!c.is_num());
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(2.0), Value::Num(2.0));
        assert_eq!(Value::from(4u32), Value::Nominal(4));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Num(1.25).to_string(), "1.25");
        assert_eq!(Value::Nominal(3).to_string(), "#3");
    }

    #[test]
    #[should_panic(expected = "expected numeric")]
    fn expect_num_panics_on_nominal() {
        Value::Nominal(0).expect_num();
    }

    #[test]
    fn value_is_small() {
        // Two words: discriminant + payload. Training loops rely on this.
        assert!(std::mem::size_of::<Value>() <= 16);
    }
}
