//! Zero-copy row selections over a columnar [`Dataset`].
//!
//! A [`DatasetView`] is a dataset reference plus an optional row-index
//! selection. Tree induction recurses on views (child views own only an
//! index vector — the column data is never cloned), and cross-validation
//! folds are views too. Column access goes through [`DatasetView::num_column`]
//! / [`DatasetView::nominal_column`]: contiguous slice scans for the
//! full-dataset view, index gathers along one column otherwise — in both
//! cases a cache-friendly walk down a single typed buffer.

use crate::{ClassId, Dataset, Schema, Value};

/// A borrowed selection of dataset rows (all rows, or an explicit index
/// list in view order).
#[derive(Debug, Clone)]
pub struct DatasetView<'a> {
    ds: &'a Dataset,
    /// `None` = every row in dataset order; `Some` = global row indices.
    rows: Option<Vec<usize>>,
}

/// Iterator over the global row ids of a view.
#[derive(Debug, Clone)]
pub enum RowIdIter<'v> {
    /// Full view: `0..len`.
    All(std::ops::Range<usize>),
    /// Selected view: the index list.
    Some(std::iter::Copied<std::slice::Iter<'v, usize>>),
}

impl Iterator for RowIdIter<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        match self {
            RowIdIter::All(r) => r.next(),
            RowIdIter::Some(it) => it.next(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            RowIdIter::All(r) => r.size_hint(),
            RowIdIter::Some(it) => it.size_hint(),
        }
    }
}

impl ExactSizeIterator for RowIdIter<'_> {}

impl<'a> DatasetView<'a> {
    /// View of every row of `ds`, in order.
    pub fn all(ds: &'a Dataset) -> Self {
        DatasetView { ds, rows: None }
    }

    /// View of the given global row indices, in the given order.
    ///
    /// Panics (debug) when an index is out of range.
    pub fn with_rows(ds: &'a Dataset, rows: Vec<usize>) -> Self {
        debug_assert!(rows.iter().all(|&r| r < ds.len()), "row index out of range");
        DatasetView {
            ds,
            rows: Some(rows),
        }
    }

    /// The underlying dataset.
    #[inline]
    pub fn dataset(&self) -> &'a Dataset {
        self.ds
    }

    /// The schema shared by all rows.
    #[inline]
    pub fn schema(&self) -> &'a Schema {
        self.ds.schema()
    }

    /// The class label names.
    pub fn class_names(&self) -> &'a [String] {
        self.ds.class_names()
    }

    /// Number of distinct classes.
    pub fn n_classes(&self) -> usize {
        self.ds.n_classes()
    }

    /// Number of rows in the view.
    pub fn len(&self) -> usize {
        match &self.rows {
            Some(v) => v.len(),
            None => self.ds.len(),
        }
    }

    /// True when the view selects no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Global dataset index of view row `i`.
    #[inline]
    pub fn row_id(&self, i: usize) -> usize {
        match &self.rows {
            Some(v) => v[i],
            None => i,
        }
    }

    /// The explicit index selection, `None` for the full view.
    pub fn row_ids(&self) -> Option<&[usize]> {
        self.rows.as_deref()
    }

    /// Iterator over the global row ids, in view order.
    #[inline]
    pub fn iter_ids(&self) -> RowIdIter<'_> {
        match &self.rows {
            Some(v) => RowIdIter::Some(v.iter().copied()),
            None => RowIdIter::All(0..self.ds.len()),
        }
    }

    /// Label of view row `i`.
    #[inline]
    pub fn label(&self, i: usize) -> ClassId {
        self.ds.label(self.row_id(i))
    }

    /// Labels in view order.
    pub fn labels(&self) -> impl ExactSizeIterator<Item = ClassId> + '_ {
        let labels = self.ds.labels();
        self.iter_ids().map(move |r| labels[r])
    }

    /// Numeric column of attribute `a`, in view order. Panics on nominal
    /// attributes.
    pub fn num_column(&self, a: usize) -> impl ExactSizeIterator<Item = f64> + '_ {
        let col = self.ds.num_column(a);
        self.iter_ids().map(move |r| col[r])
    }

    /// Nominal column of attribute `a`, in view order. Panics on numeric
    /// attributes.
    pub fn nominal_column(&self, a: usize) -> impl ExactSizeIterator<Item = u32> + '_ {
        let col = self.ds.nominal_column(a);
        self.iter_ids().map(move |r| col[r])
    }

    /// Value of attribute `a` in view row `i`.
    #[inline]
    pub fn value(&self, i: usize, a: usize) -> Value {
        self.ds.value(self.row_id(i), a)
    }

    /// View row `i` materialized as a value vector (display shim).
    pub fn row_values(&self, i: usize) -> Vec<Value> {
        self.ds.row_values(self.row_id(i))
    }

    /// Count of view rows per class.
    pub fn class_distribution(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_classes()];
        for l in self.labels() {
            counts[l] += 1;
        }
        counts
    }

    /// The most frequent class among the view rows (ties broken by lowest
    /// id). Panics on empty views.
    pub fn majority_class(&self) -> ClassId {
        assert!(!self.is_empty(), "majority_class on empty view");
        self.class_distribution()
            .iter()
            .enumerate()
            .max_by_key(|(id, &c)| (c, usize::MAX - id))
            .map(|(id, _)| id)
            .expect("non-empty class list")
    }

    /// Fraction of view rows in the majority class, in `[0, 1]`.
    pub fn skew(&self) -> f64 {
        if self.is_empty() {
            return 1.0;
        }
        let max = self.class_distribution().into_iter().max().unwrap_or(0);
        max as f64 / self.len() as f64
    }

    /// Min and max of a numeric attribute over the view rows, `None` when
    /// the view is empty or the attribute nominal.
    pub fn numeric_range(&self, attribute: usize) -> Option<(f64, f64)> {
        if !self.schema().attribute(attribute).is_numeric() {
            return None;
        }
        let mut it = self.num_column(attribute);
        let first = it.next()?;
        let (mut lo, mut hi) = (first, first);
        for x in it {
            if x < lo {
                lo = x;
            }
            if x > hi {
                hi = x;
            }
        }
        Some((lo, hi))
    }

    /// A sub-view selecting the view rows whose *global* ids are given
    /// (callers typically partition [`DatasetView::iter_ids`] output).
    pub fn subview(&self, global_rows: Vec<usize>) -> DatasetView<'a> {
        DatasetView::with_rows(self.ds, global_rows)
    }

    /// Splits the view into exactly `n` disjoint contiguous sub-views of
    /// near-equal size (the first `len % n` chunks are one row longer;
    /// chunks past the length are empty when `n > len`). Concatenated in
    /// order, the chunks reproduce the view — the partition a serving
    /// caller hands to scoring threads sharing one predictor.
    pub fn chunks(&self, n: usize) -> Vec<DatasetView<'a>> {
        assert!(n > 0, "need at least one chunk");
        let len = self.len();
        let (base, extra) = (len / n, len % n);
        let mut ids = self.iter_ids();
        (0..n)
            .map(|c| {
                let take = base + usize::from(c < extra);
                self.subview(ids.by_ref().take(take).collect())
            })
            .collect()
    }

    /// Materializes the view into an owned dataset (column gathers).
    pub fn materialize(&self) -> Dataset {
        match &self.rows {
            Some(v) => self.ds.subset(v),
            None => self.ds.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Attribute, Schema};

    fn toy(n: usize) -> Dataset {
        let schema = Schema::new(vec![
            Attribute::numeric("x"),
            Attribute::nominal_anon("c", 3),
        ]);
        let mut ds = Dataset::new(schema, vec!["A".into(), "B".into()]);
        for i in 0..n {
            ds.push(
                vec![Value::Num(i as f64), Value::Nominal((i % 3) as u32)],
                i % 2,
            )
            .unwrap();
        }
        ds
    }

    #[test]
    fn full_view_matches_dataset() {
        let ds = toy(6);
        let v = ds.view();
        assert_eq!(v.len(), 6);
        assert_eq!(v.class_distribution(), ds.class_distribution());
        assert_eq!(v.majority_class(), ds.majority_class());
        assert_eq!(v.numeric_range(0), ds.numeric_range(0));
        assert_eq!(v.num_column(0).collect::<Vec<_>>(), ds.num_column(0));
        assert_eq!(
            v.nominal_column(1).collect::<Vec<_>>(),
            ds.nominal_column(1)
        );
        assert_eq!(v.labels().collect::<Vec<_>>(), ds.labels());
    }

    #[test]
    fn selected_view_gathers_in_order() {
        let ds = toy(8);
        let v = ds.view_of(vec![7, 0, 3]);
        assert_eq!(v.len(), 3);
        assert_eq!(v.num_column(0).collect::<Vec<_>>(), vec![7.0, 0.0, 3.0]);
        assert_eq!(v.label(0), 1);
        assert_eq!(v.row_id(2), 3);
        assert_eq!(v.row_values(1), ds.row_values(0));
        assert_eq!(v.row_ids(), Some(&[7usize, 0, 3][..]));
    }

    #[test]
    fn subview_and_materialize() {
        let ds = toy(10);
        let v = ds.view_of((0..10).filter(|i| i % 2 == 0).collect());
        let evens_lt6: Vec<usize> = v.iter_ids().filter(|&r| r < 6).collect();
        let sub = v.subview(evens_lt6);
        assert_eq!(sub.len(), 3);
        let owned = sub.materialize();
        assert_eq!(owned.len(), 3);
        assert_eq!(owned.num_column(0), &[0.0, 2.0, 4.0]);
        // Materializing the full view clones the dataset.
        assert_eq!(ds.view().materialize(), ds);
    }

    #[test]
    fn view_stats_on_selection() {
        let ds = toy(10);
        let v = ds.view_of(vec![1, 3, 5]); // labels 1,1,1
        assert_eq!(v.class_distribution(), vec![0, 3]);
        assert_eq!(v.majority_class(), 1);
        assert_eq!(v.skew(), 1.0);
        assert_eq!(v.numeric_range(0), Some((1.0, 5.0)));
        assert_eq!(v.numeric_range(1), None);
    }

    #[test]
    fn chunks_partition_the_view() {
        let ds = toy(10);
        // 10 rows into 3 chunks: 4 + 3 + 3.
        let parts = ds.view().chunks(3);
        assert_eq!(
            parts.iter().map(DatasetView::len).collect::<Vec<_>>(),
            vec![4, 3, 3]
        );
        let rejoined: Vec<usize> = parts.iter().flat_map(DatasetView::iter_ids).collect();
        assert_eq!(rejoined, (0..10).collect::<Vec<_>>());
        // Selected views chunk in view order.
        let v = ds.view_of(vec![9, 1, 5, 3]);
        let parts = v.chunks(2);
        assert_eq!(parts[0].row_ids(), Some(&[9usize, 1][..]));
        assert_eq!(parts[1].row_ids(), Some(&[5usize, 3][..]));
        // More chunks than rows: trailing chunks are empty.
        let parts = ds.view_of(vec![2]).chunks(3);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0].len(), 1);
        assert!(parts[1].is_empty() && parts[2].is_empty());
    }

    #[test]
    fn empty_view() {
        let ds = toy(4);
        let v = ds.view_of(Vec::new());
        assert!(v.is_empty());
        assert_eq!(v.skew(), 1.0);
        assert_eq!(v.numeric_range(0), None);
    }
}
