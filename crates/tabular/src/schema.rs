//! Attribute and schema definitions.

use serde::{Deserialize, Serialize};

use crate::{TabularError, Value};

/// The kind of an attribute.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AttrKind {
    /// Continuous or ordered numeric attribute.
    Numeric,
    /// Nominal attribute with a fixed category list (code `i` ↦ `categories[i]`).
    Nominal {
        /// Display names of the categories, indexed by code.
        categories: Vec<String>,
    },
}

/// One attribute (column) of a relation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Attribute {
    /// Column name.
    pub name: String,
    /// Column kind.
    pub kind: AttrKind,
}

impl Attribute {
    /// Creates a numeric attribute.
    pub fn numeric(name: impl Into<String>) -> Self {
        Attribute {
            name: name.into(),
            kind: AttrKind::Numeric,
        }
    }

    /// Creates a nominal attribute from category names.
    pub fn nominal<I, S>(name: impl Into<String>, categories: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Attribute {
            name: name.into(),
            kind: AttrKind::Nominal {
                categories: categories.into_iter().map(Into::into).collect(),
            },
        }
    }

    /// Creates a nominal attribute with `n` anonymous categories `"0".."n-1"`.
    pub fn nominal_anon(name: impl Into<String>, n: usize) -> Self {
        Attribute::nominal(name, (0..n).map(|i| i.to_string()))
    }

    /// True for numeric attributes.
    pub fn is_numeric(&self) -> bool {
        matches!(self.kind, AttrKind::Numeric)
    }

    /// Number of categories for nominal attributes, `None` for numeric.
    pub fn cardinality(&self) -> Option<usize> {
        match &self.kind {
            AttrKind::Numeric => None,
            AttrKind::Nominal { categories } => Some(categories.len()),
        }
    }

    /// Checks that `value` is admissible for this attribute.
    pub fn validate(&self, index: usize, value: &Value) -> crate::Result<()> {
        match (&self.kind, value) {
            (AttrKind::Numeric, Value::Num(x)) => {
                if x.is_finite() {
                    Ok(())
                } else {
                    Err(TabularError::TypeMismatch {
                        attribute: index,
                        detail: format!("non-finite numeric value {x}"),
                    })
                }
            }
            (AttrKind::Nominal { categories }, Value::Nominal(c)) => {
                if (*c as usize) < categories.len() {
                    Ok(())
                } else {
                    Err(TabularError::UnknownCategory {
                        attribute: index,
                        code: *c,
                    })
                }
            }
            (AttrKind::Numeric, Value::Nominal(_)) => Err(TabularError::TypeMismatch {
                attribute: index,
                detail: "nominal value for numeric attribute".into(),
            }),
            (AttrKind::Nominal { .. }, Value::Num(_)) => Err(TabularError::TypeMismatch {
                attribute: index,
                detail: "numeric value for nominal attribute".into(),
            }),
        }
    }
}

/// An ordered list of attributes describing one relation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schema {
    attributes: Vec<Attribute>,
}

impl Schema {
    /// Creates a schema from its attributes.
    pub fn new(attributes: Vec<Attribute>) -> Self {
        Schema { attributes }
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// The attributes in order.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// Attribute at `index`.
    pub fn attribute(&self, index: usize) -> &Attribute {
        &self.attributes[index]
    }

    /// Finds an attribute index by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.attributes.iter().position(|a| a.name == name)
    }

    /// Validates a full row against the schema.
    pub fn validate_row(&self, row: &[Value]) -> crate::Result<()> {
        if row.len() != self.arity() {
            return Err(TabularError::ArityMismatch {
                expected: self.arity(),
                got: row.len(),
            });
        }
        for (i, (attr, value)) in self.attributes.iter().zip(row).enumerate() {
            attr.validate(i, value)?;
        }
        Ok(())
    }

    /// Renders `value` for attribute `index` using category names when available.
    pub fn display_value(&self, index: usize, value: &Value) -> String {
        match (&self.attributes[index].kind, value) {
            (AttrKind::Nominal { categories }, Value::Nominal(c)) => categories
                .get(*c as usize)
                .cloned()
                .unwrap_or_else(|| format!("#{c}")),
            _ => value.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::numeric("age"),
            Attribute::nominal("color", ["red", "green"]),
        ])
    }

    #[test]
    fn arity_and_lookup() {
        let s = schema();
        assert_eq!(s.arity(), 2);
        assert_eq!(s.index_of("color"), Some(1));
        assert_eq!(s.index_of("nope"), None);
        assert_eq!(s.attribute(0).name, "age");
    }

    #[test]
    fn validates_good_row() {
        let s = schema();
        assert!(s
            .validate_row(&[Value::Num(1.0), Value::Nominal(1)])
            .is_ok());
    }

    #[test]
    fn rejects_bad_arity() {
        let s = schema();
        let err = s.validate_row(&[Value::Num(1.0)]).unwrap_err();
        assert_eq!(
            err,
            TabularError::ArityMismatch {
                expected: 2,
                got: 1
            }
        );
    }

    #[test]
    fn rejects_type_mismatch() {
        let s = schema();
        assert!(s
            .validate_row(&[Value::Nominal(0), Value::Nominal(0)])
            .is_err());
        assert!(s.validate_row(&[Value::Num(0.0), Value::Num(0.0)]).is_err());
    }

    #[test]
    fn rejects_unknown_category() {
        let s = schema();
        let err = s
            .validate_row(&[Value::Num(0.0), Value::Nominal(9)])
            .unwrap_err();
        assert_eq!(
            err,
            TabularError::UnknownCategory {
                attribute: 1,
                code: 9
            }
        );
    }

    #[test]
    fn rejects_non_finite_numeric() {
        let s = schema();
        assert!(s
            .validate_row(&[Value::Num(f64::NAN), Value::Nominal(0)])
            .is_err());
        assert!(s
            .validate_row(&[Value::Num(f64::INFINITY), Value::Nominal(0)])
            .is_err());
    }

    #[test]
    fn display_uses_category_names() {
        let s = schema();
        assert_eq!(s.display_value(1, &Value::Nominal(0)), "red");
        assert_eq!(s.display_value(0, &Value::Num(2.5)), "2.5");
    }

    #[test]
    fn anon_nominal_cardinality() {
        let a = Attribute::nominal_anon("car", 20);
        assert_eq!(a.cardinality(), Some(20));
        assert!(!a.is_numeric());
    }
}
