//! Labeled datasets: collections of tuples plus class labels.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::{Schema, TabularError, Value};

/// Index into a dataset's class list.
pub type ClassId = usize;

/// How [`Dataset::split`] partitions the rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitMethod {
    /// First `n` rows go to the head split, the rest to the tail split.
    Sequential,
    /// Rows are shuffled with the given seed before splitting.
    Shuffled(u64),
}

/// A labeled dataset: a schema, rows of values, and one class label per row.
///
/// This corresponds directly to the paper's training/testing sets of
/// `(a_1, …, a_n, c_k)` tuples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    schema: Schema,
    class_names: Vec<String>,
    rows: Vec<Vec<Value>>,
    labels: Vec<ClassId>,
}

impl Dataset {
    /// Creates an empty dataset over `schema` with the given class labels.
    pub fn new(schema: Schema, class_names: Vec<String>) -> Self {
        Dataset {
            schema,
            class_names,
            rows: Vec::new(),
            labels: Vec::new(),
        }
    }

    /// Creates a dataset with rows, validating each against the schema.
    pub fn from_rows(
        schema: Schema,
        class_names: Vec<String>,
        rows: Vec<Vec<Value>>,
        labels: Vec<ClassId>,
    ) -> crate::Result<Self> {
        let mut ds = Dataset::new(schema, class_names);
        ds.rows.reserve(rows.len());
        ds.labels.reserve(labels.len());
        if rows.len() != labels.len() {
            return Err(TabularError::RowLabelCountMismatch {
                rows: rows.len(),
                labels: labels.len(),
            });
        }
        for (row, label) in rows.into_iter().zip(labels) {
            ds.push(row, label)?;
        }
        Ok(ds)
    }

    /// Appends a validated row.
    pub fn push(&mut self, row: Vec<Value>, label: ClassId) -> crate::Result<()> {
        self.schema.validate_row(&row)?;
        if label >= self.class_names.len() {
            return Err(TabularError::UnknownClass(label));
        }
        self.rows.push(row);
        self.labels.push(label);
        Ok(())
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the dataset has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The schema shared by all rows.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The class label names (indexed by [`ClassId`]).
    pub fn class_names(&self) -> &[String] {
        &self.class_names
    }

    /// Number of distinct classes.
    pub fn n_classes(&self) -> usize {
        self.class_names.len()
    }

    /// Row at `index`.
    pub fn row(&self, index: usize) -> &[Value] {
        &self.rows[index]
    }

    /// Label of row `index`.
    pub fn label(&self, index: usize) -> ClassId {
        self.labels[index]
    }

    /// All labels in row order.
    pub fn labels(&self) -> &[ClassId] {
        &self.labels
    }

    /// Iterator over `(row, label)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&[Value], ClassId)> + '_ {
        self.rows
            .iter()
            .map(|r| r.as_slice())
            .zip(self.labels.iter().copied())
    }

    /// Count of rows per class.
    pub fn class_distribution(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.class_names.len()];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }

    /// The most frequent class (ties broken by lowest id). Panics on empty datasets.
    pub fn majority_class(&self) -> ClassId {
        assert!(!self.is_empty(), "majority_class on empty dataset");
        let counts = self.class_distribution();
        counts
            .iter()
            .enumerate()
            .max_by_key(|(id, &c)| (c, usize::MAX - id))
            .map(|(id, _)| id)
            .expect("non-empty class list")
    }

    /// Fraction of rows belonging to the majority class, in `[0, 1]`.
    ///
    /// The paper drops functions 8 and 10 because they produce "highly skewed
    /// data"; this is the statistic used to detect that.
    pub fn skew(&self) -> f64 {
        if self.is_empty() {
            return 1.0;
        }
        let counts = self.class_distribution();
        let max = counts.into_iter().max().unwrap_or(0);
        max as f64 / self.len() as f64
    }

    /// Splits into `(head, tail)` where `head` has `n` rows.
    ///
    /// Panics if `n > len()`.
    pub fn split(&self, n: usize, method: SplitMethod) -> (Dataset, Dataset) {
        assert!(
            n <= self.len(),
            "split point {n} beyond dataset of {}",
            self.len()
        );
        let mut order: Vec<usize> = (0..self.len()).collect();
        if let SplitMethod::Shuffled(seed) = method {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            order.shuffle(&mut rng);
        }
        let mut head = Dataset::new(self.schema.clone(), self.class_names.clone());
        let mut tail = Dataset::new(self.schema.clone(), self.class_names.clone());
        for (k, &i) in order.iter().enumerate() {
            let target = if k < n { &mut head } else { &mut tail };
            target.rows.push(self.rows[i].clone());
            target.labels.push(self.labels[i]);
        }
        (head, tail)
    }

    /// Returns the subset of rows whose indices are in `indices`.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let mut out = Dataset::new(self.schema.clone(), self.class_names.clone());
        out.rows.reserve(indices.len());
        out.labels.reserve(indices.len());
        for &i in indices {
            out.rows.push(self.rows[i].clone());
            out.labels.push(self.labels[i]);
        }
        out
    }

    /// Min and max of a numeric attribute over all rows, `None` when empty or nominal.
    pub fn numeric_range(&self, attribute: usize) -> Option<(f64, f64)> {
        if !self.schema.attribute(attribute).is_numeric() {
            return None;
        }
        let mut it = self.rows.iter().map(|r| r[attribute].expect_num());
        let first = it.next()?;
        let (mut lo, mut hi) = (first, first);
        for x in it {
            if x < lo {
                lo = x;
            }
            if x > hi {
                hi = x;
            }
        }
        Some((lo, hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Attribute;

    fn toy(n: usize) -> Dataset {
        let schema = Schema::new(vec![
            Attribute::numeric("x"),
            Attribute::nominal_anon("c", 3),
        ]);
        let mut ds = Dataset::new(schema, vec!["A".into(), "B".into()]);
        for i in 0..n {
            ds.push(
                vec![Value::Num(i as f64), Value::Nominal((i % 3) as u32)],
                i % 2,
            )
            .unwrap();
        }
        ds
    }

    #[test]
    fn push_and_access() {
        let ds = toy(5);
        assert_eq!(ds.len(), 5);
        assert_eq!(ds.row(2)[0], Value::Num(2.0));
        assert_eq!(ds.label(3), 1);
        assert_eq!(ds.n_classes(), 2);
    }

    #[test]
    fn rejects_invalid_rows() {
        let mut ds = toy(0);
        assert!(ds.push(vec![Value::Num(0.0)], 0).is_err());
        assert!(ds
            .push(vec![Value::Num(0.0), Value::Nominal(0)], 7)
            .is_err());
        assert!(ds
            .push(vec![Value::Nominal(0), Value::Nominal(0)], 0)
            .is_err());
    }

    #[test]
    fn distribution_and_majority() {
        let ds = toy(7); // labels 0,1,0,1,0,1,0 -> 4 zeros, 3 ones
        assert_eq!(ds.class_distribution(), vec![4, 3]);
        assert_eq!(ds.majority_class(), 0);
        assert!((ds.skew() - 4.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn sequential_split_preserves_order() {
        let ds = toy(10);
        let (head, tail) = ds.split(4, SplitMethod::Sequential);
        assert_eq!(head.len(), 4);
        assert_eq!(tail.len(), 6);
        assert_eq!(head.row(0)[0], Value::Num(0.0));
        assert_eq!(tail.row(0)[0], Value::Num(4.0));
    }

    #[test]
    fn shuffled_split_is_deterministic_and_partitioning() {
        let ds = toy(20);
        let (h1, t1) = ds.split(10, SplitMethod::Shuffled(42));
        let (h2, _) = ds.split(10, SplitMethod::Shuffled(42));
        assert_eq!(h1, h2);
        let mut seen: Vec<f64> = h1
            .iter()
            .chain(t1.iter())
            .map(|(r, _)| r[0].expect_num())
            .collect();
        seen.sort_by(f64::total_cmp);
        assert_eq!(seen, (0..20).map(|i| i as f64).collect::<Vec<_>>());
    }

    #[test]
    fn subset_selects_rows() {
        let ds = toy(6);
        let sub = ds.subset(&[5, 0, 3]);
        assert_eq!(sub.len(), 3);
        assert_eq!(sub.row(0)[0], Value::Num(5.0));
        assert_eq!(sub.row(2)[0], Value::Num(3.0));
    }

    #[test]
    fn numeric_range_works() {
        let ds = toy(6);
        assert_eq!(ds.numeric_range(0), Some((0.0, 5.0)));
        assert_eq!(ds.numeric_range(1), None);
        assert_eq!(toy(0).numeric_range(0), None);
    }

    #[test]
    fn from_rows_validates() {
        let schema = Schema::new(vec![Attribute::numeric("x")]);
        let ok = Dataset::from_rows(
            schema.clone(),
            vec!["A".into()],
            vec![vec![Value::Num(1.0)]],
            vec![0],
        );
        assert!(ok.is_ok());
        let bad = Dataset::from_rows(
            schema,
            vec!["A".into()],
            vec![vec![Value::Num(1.0)]],
            vec![1],
        );
        assert!(bad.is_err());
    }

    #[test]
    fn iter_pairs_rows_with_labels() {
        let ds = toy(3);
        let pairs: Vec<(f64, ClassId)> = ds.iter().map(|(r, l)| (r[0].expect_num(), l)).collect();
        assert_eq!(pairs, vec![(0.0, 0), (1.0, 1), (2.0, 0)]);
    }

    #[test]
    fn serde_roundtrip() {
        let ds = toy(4);
        let json = serde_json::to_string(&ds).unwrap();
        let back: Dataset = serde_json::from_str(&json).unwrap();
        assert_eq!(ds, back);
    }
}
