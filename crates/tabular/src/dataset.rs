//! Labeled datasets: typed columns of tuples plus class labels.
//!
//! The storage is **columnar**: one `f64` buffer per numeric attribute, one
//! `u32` code buffer per nominal attribute, and one label buffer — the layout the
//! paper's "mining large databases" framing calls for. Consumers scan
//! columns ([`Dataset::num_column`] / [`Dataset::nominal_column`]) or work
//! on zero-copy row selections ([`crate::DatasetView`]); the row-major
//! [`Dataset::row_values`] shim exists only for display and for feeding
//! single tuples to row-oriented predictors.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::{AttrKind, Buf, Schema, TabularError, Value};

/// Index into a dataset's class list.
pub type ClassId = usize;

/// How [`Dataset::split`] partitions the rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitMethod {
    /// First `n` rows go to the head split, the rest to the tail split.
    Sequential,
    /// Rows are shuffled with the given seed before splitting.
    Shuffled(u64),
}

/// One typed attribute column. The backing [`Buf`] is either an owned
/// `Vec` (every ordinary construction path) or a zero-copy window into a
/// shared source such as a memory-mapped segment file (`nr-store`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Column {
    /// Values of a numeric attribute, in row order.
    Num(Buf<f64>),
    /// Category codes of a nominal attribute, in row order.
    Nominal(Buf<u32>),
}

impl Column {
    /// An empty column matching an attribute kind.
    pub fn empty_for(kind: &AttrKind) -> Column {
        match kind {
            AttrKind::Numeric => Column::Num(Buf::new()),
            AttrKind::Nominal { .. } => Column::Nominal(Buf::new()),
        }
    }

    /// An owned numeric column (convenience constructor).
    pub fn num(values: Vec<f64>) -> Column {
        Column::Num(values.into())
    }

    /// An owned nominal column (convenience constructor).
    pub fn nominal(codes: Vec<u32>) -> Column {
        Column::Nominal(codes.into())
    }

    /// Number of values stored.
    pub fn len(&self) -> usize {
        match self {
            Column::Num(v) => v.len(),
            Column::Nominal(v) => v.len(),
        }
    }

    /// True when the column holds no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when the backing buffer borrows a shared source (e.g. a
    /// memory-mapped segment region) instead of owning a `Vec`.
    pub fn is_shared(&self) -> bool {
        match self {
            Column::Num(v) => v.is_shared(),
            Column::Nominal(v) => v.is_shared(),
        }
    }

    /// The numeric data, or `None` for nominal columns.
    pub fn as_num(&self) -> Option<&[f64]> {
        match self {
            Column::Num(v) => Some(v),
            Column::Nominal(_) => None,
        }
    }

    /// The nominal codes, or `None` for numeric columns.
    pub fn as_nominal(&self) -> Option<&[u32]> {
        match self {
            Column::Num(_) => None,
            Column::Nominal(v) => Some(v),
        }
    }

    /// Value at `row` as a [`Value`].
    #[inline]
    pub fn value(&self, row: usize) -> Value {
        match self {
            Column::Num(v) => Value::Num(v[row]),
            Column::Nominal(v) => Value::Nominal(v[row]),
        }
    }

    fn reserve(&mut self, additional: usize) {
        match self {
            Column::Num(v) => v.reserve(additional),
            Column::Nominal(v) => v.reserve(additional),
        }
    }

    fn push_value(&mut self, value: &Value) {
        match (self, value) {
            (Column::Num(v), Value::Num(x)) => v.push(*x),
            (Column::Nominal(v), Value::Nominal(c)) => v.push(*c),
            _ => unreachable!("validated against the schema before pushing"),
        }
    }

    fn extend_gather(&mut self, src: &Column, indices: &[usize]) {
        match (self, src) {
            (Column::Num(dst), Column::Num(s)) => dst.extend(indices.iter().map(|&i| s[i])),
            (Column::Nominal(dst), Column::Nominal(s)) => dst.extend(indices.iter().map(|&i| s[i])),
            _ => unreachable!("columns of one schema share kinds"),
        }
    }
}

/// A labeled dataset: a schema, typed attribute columns, and one class
/// label per row.
///
/// This corresponds directly to the paper's training/testing sets of
/// `(a_1, …, a_n, c_k)` tuples, stored column-major.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    schema: Schema,
    class_names: Vec<String>,
    columns: Vec<Column>,
    labels: Buf<ClassId>,
}

impl Dataset {
    /// Creates an empty dataset over `schema` with the given class labels.
    pub fn new(schema: Schema, class_names: Vec<String>) -> Self {
        let columns = schema
            .attributes()
            .iter()
            .map(|a| Column::empty_for(&a.kind))
            .collect();
        Dataset {
            schema,
            class_names,
            columns,
            labels: Buf::new(),
        }
    }

    /// Assembles a dataset directly from pre-built columns and labels —
    /// the zero-copy segment-load path (`nr-store` maps a spill file and
    /// wraps each region in a [`Buf::Shared`] window).
    ///
    /// Structural invariants (arity, per-column kind, equal lengths) are
    /// checked here. **Value-level invariants** — finite numerics, nominal
    /// codes within each attribute's category list, labels within the
    /// class list — are the caller's contract (they are debug-asserted):
    /// scanning every value would fault in every page of a mapped
    /// multi-gigabyte segment, defeating lazy loading. `nr-store` upholds
    /// the contract because spill files are written from datasets that
    /// were validated on ingest.
    pub fn from_shared_parts(
        schema: Schema,
        class_names: Vec<String>,
        columns: Vec<Column>,
        labels: Buf<ClassId>,
    ) -> crate::Result<Self> {
        if columns.len() != schema.arity() {
            return Err(TabularError::ArityMismatch {
                expected: schema.arity(),
                got: columns.len(),
            });
        }
        let rows = labels.len();
        for (a, (attr, col)) in schema.attributes().iter().zip(&columns).enumerate() {
            if col.len() != rows {
                return Err(TabularError::RowLabelCountMismatch {
                    rows: col.len(),
                    labels: rows,
                });
            }
            match (&attr.kind, col) {
                (AttrKind::Numeric, Column::Num(xs)) => {
                    debug_assert!(
                        xs.iter().all(|x| x.is_finite()),
                        "non-finite numeric value in shared column {a}"
                    );
                }
                (AttrKind::Nominal { categories }, Column::Nominal(cs)) => {
                    debug_assert!(
                        cs.iter().all(|&c| (c as usize) < categories.len()),
                        "nominal code out of range in shared column {a}"
                    );
                }
                _ => {
                    return Err(TabularError::TypeMismatch {
                        attribute: a,
                        detail: "column kind does not match the attribute".into(),
                    })
                }
            }
        }
        debug_assert!(
            labels.iter().all(|&l| l < class_names.len()),
            "label out of range in shared label buffer"
        );
        Ok(Dataset {
            schema,
            class_names,
            columns,
            labels,
        })
    }

    /// Creates an empty dataset with row capacity reserved in every column.
    pub fn with_capacity(schema: Schema, class_names: Vec<String>, rows: usize) -> Self {
        let mut ds = Dataset::new(schema, class_names);
        ds.reserve(rows);
        ds
    }

    /// Reserves capacity for `additional` more rows in every column.
    pub fn reserve(&mut self, additional: usize) {
        for c in &mut self.columns {
            c.reserve(additional);
        }
        self.labels.reserve(additional);
    }

    /// Creates a dataset from row-major data, validating each row against
    /// the schema (compatibility constructor; bulk ingest should build
    /// columns directly and use [`Dataset::append_columns`]).
    pub fn from_rows(
        schema: Schema,
        class_names: Vec<String>,
        rows: Vec<Vec<Value>>,
        labels: Vec<ClassId>,
    ) -> crate::Result<Self> {
        if rows.len() != labels.len() {
            return Err(TabularError::RowLabelCountMismatch {
                rows: rows.len(),
                labels: labels.len(),
            });
        }
        let mut ds = Dataset::with_capacity(schema, class_names, rows.len());
        for (row, label) in rows.into_iter().zip(labels) {
            ds.push(row, label)?;
        }
        Ok(ds)
    }

    /// Appends one validated row **without a known class** — the serving
    /// ingest path. The row is stored with the placeholder label `0`
    /// (keeping the one-label-per-row invariant); batch predictors ignore
    /// labels, so scoring a table built this way is well-defined, while
    /// label-consuming statistics (`accuracy`, confusion matrices) are
    /// meaningless on it by construction.
    pub fn push_unlabeled(&mut self, row: Vec<Value>) -> crate::Result<()> {
        assert!(
            !self.class_names.is_empty(),
            "dataset must know its class list before receiving rows"
        );
        self.push(row, 0)
    }

    /// Appends one validated row (scattered into the columns).
    pub fn push(&mut self, row: Vec<Value>, label: ClassId) -> crate::Result<()> {
        self.schema.validate_row(&row)?;
        if label >= self.class_names.len() {
            return Err(TabularError::UnknownClass(label));
        }
        for (col, value) in self.columns.iter_mut().zip(&row) {
            col.push_value(value);
        }
        self.labels.push(label);
        Ok(())
    }

    /// Bulk append: concatenates whole column segments onto the dataset.
    ///
    /// Validation is per *column* (kind match, finite numerics, nominal
    /// codes in range, labels in range) — one cache-friendly scan per
    /// attribute instead of the per-row, per-value dispatch of
    /// [`Dataset::push`]. All segments and `labels` must have equal length.
    pub fn append_columns(
        &mut self,
        columns: Vec<Column>,
        labels: Vec<ClassId>,
    ) -> crate::Result<()> {
        if columns.len() != self.schema.arity() {
            return Err(TabularError::ArityMismatch {
                expected: self.schema.arity(),
                got: columns.len(),
            });
        }
        let rows = labels.len();
        for (a, (attr, col)) in self.schema.attributes().iter().zip(&columns).enumerate() {
            if col.len() != rows {
                return Err(TabularError::RowLabelCountMismatch {
                    rows: col.len(),
                    labels: rows,
                });
            }
            match (&attr.kind, col) {
                (AttrKind::Numeric, Column::Num(xs)) => {
                    if let Some(bad) = xs.iter().find(|x| !x.is_finite()) {
                        return Err(TabularError::TypeMismatch {
                            attribute: a,
                            detail: format!("non-finite numeric value {bad}"),
                        });
                    }
                }
                (AttrKind::Nominal { categories }, Column::Nominal(cs)) => {
                    let card = categories.len() as u32;
                    if let Some(&bad) = cs.iter().find(|&&c| c >= card) {
                        return Err(TabularError::UnknownCategory {
                            attribute: a,
                            code: bad,
                        });
                    }
                }
                (AttrKind::Numeric, Column::Nominal(_)) => {
                    return Err(TabularError::TypeMismatch {
                        attribute: a,
                        detail: "nominal column for numeric attribute".into(),
                    })
                }
                (AttrKind::Nominal { .. }, Column::Num(_)) => {
                    return Err(TabularError::TypeMismatch {
                        attribute: a,
                        detail: "numeric column for nominal attribute".into(),
                    })
                }
            }
        }
        if let Some(&bad) = labels.iter().find(|&&l| l >= self.class_names.len()) {
            return Err(TabularError::UnknownClass(bad));
        }
        for (dst, src) in self.columns.iter_mut().zip(columns) {
            match (dst, src) {
                (Column::Num(d), Column::Num(s)) => d.extend(s),
                (Column::Nominal(d), Column::Nominal(s)) => d.extend(s),
                _ => unreachable!("kinds checked above"),
            }
        }
        self.labels.extend(labels);
        Ok(())
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when the dataset has no rows.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The schema shared by all rows.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The class label names (indexed by [`ClassId`]).
    pub fn class_names(&self) -> &[String] {
        &self.class_names
    }

    /// Number of distinct classes.
    pub fn n_classes(&self) -> usize {
        self.class_names.len()
    }

    /// The typed column of attribute `a`.
    #[inline]
    pub fn column(&self, a: usize) -> &Column {
        &self.columns[a]
    }

    /// The numeric column of attribute `a`. Panics on nominal attributes.
    #[inline]
    pub fn num_column(&self, a: usize) -> &[f64] {
        self.columns[a].as_num().expect("attribute is numeric")
    }

    /// The nominal column of attribute `a`. Panics on numeric attributes.
    #[inline]
    pub fn nominal_column(&self, a: usize) -> &[u32] {
        self.columns[a].as_nominal().expect("attribute is nominal")
    }

    /// Value of attribute `a` in row `row`.
    #[inline]
    pub fn value(&self, row: usize, a: usize) -> Value {
        self.columns[a].value(row)
    }

    /// Row `row` materialized as a value vector.
    ///
    /// This is the compatibility shim over the columnar storage — a gather
    /// plus an allocation per call. Use it for display and for handing
    /// single tuples to row-oriented APIs; bulk consumers should scan
    /// columns instead.
    pub fn row_values(&self, row: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.value(row)).collect()
    }

    /// Label of row `index`.
    #[inline]
    pub fn label(&self, index: usize) -> ClassId {
        self.labels[index]
    }

    /// All labels in row order.
    pub fn labels(&self) -> &[ClassId] {
        &self.labels
    }

    /// Count of rows per class.
    pub fn class_distribution(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.class_names.len()];
        for &l in self.labels.iter() {
            counts[l] += 1;
        }
        counts
    }

    /// The most frequent class (ties broken by lowest id). Panics on empty datasets.
    pub fn majority_class(&self) -> ClassId {
        assert!(!self.is_empty(), "majority_class on empty dataset");
        let counts = self.class_distribution();
        counts
            .iter()
            .enumerate()
            .max_by_key(|(id, &c)| (c, usize::MAX - id))
            .map(|(id, _)| id)
            .expect("non-empty class list")
    }

    /// Fraction of rows belonging to the majority class, in `[0, 1]`.
    ///
    /// The paper drops functions 8 and 10 because they produce "highly skewed
    /// data"; this is the statistic used to detect that.
    pub fn skew(&self) -> f64 {
        if self.is_empty() {
            return 1.0;
        }
        let counts = self.class_distribution();
        let max = counts.into_iter().max().unwrap_or(0);
        max as f64 / self.len() as f64
    }

    /// A zero-copy view of every row, in order.
    pub fn view(&self) -> crate::DatasetView<'_> {
        crate::DatasetView::all(self)
    }

    /// A zero-copy view of the given rows (global indices, in view order).
    pub fn view_of(&self, rows: Vec<usize>) -> crate::DatasetView<'_> {
        crate::DatasetView::with_rows(self, rows)
    }

    /// Splits into `(head, tail)` where `head` has `n` rows.
    ///
    /// Materializes two owned datasets (column gathers); use
    /// [`Dataset::view_of`] when a borrowed selection is enough.
    /// Panics if `n > len()`.
    pub fn split(&self, n: usize, method: SplitMethod) -> (Dataset, Dataset) {
        assert!(
            n <= self.len(),
            "split point {n} beyond dataset of {}",
            self.len()
        );
        let mut order: Vec<usize> = (0..self.len()).collect();
        if let SplitMethod::Shuffled(seed) = method {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            order.shuffle(&mut rng);
        }
        (self.subset(&order[..n]), self.subset(&order[n..]))
    }

    /// Materializes the subset of rows whose indices are in `indices`
    /// (column gathers — no per-row allocation).
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let mut out =
            Dataset::with_capacity(self.schema.clone(), self.class_names.clone(), indices.len());
        for (dst, src) in out.columns.iter_mut().zip(&self.columns) {
            dst.extend_gather(src, indices);
        }
        out.labels.extend(indices.iter().map(|&i| self.labels[i]));
        out
    }

    /// Min and max of a numeric attribute over all rows, `None` when empty or nominal.
    pub fn numeric_range(&self, attribute: usize) -> Option<(f64, f64)> {
        let xs = self.columns[attribute].as_num()?;
        let (&first, rest) = xs.split_first()?;
        let (mut lo, mut hi) = (first, first);
        for &x in rest {
            if x < lo {
                lo = x;
            }
            if x > hi {
                hi = x;
            }
        }
        Some((lo, hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Attribute;

    fn toy(n: usize) -> Dataset {
        let schema = Schema::new(vec![
            Attribute::numeric("x"),
            Attribute::nominal_anon("c", 3),
        ]);
        let mut ds = Dataset::new(schema, vec!["A".into(), "B".into()]);
        for i in 0..n {
            ds.push(
                vec![Value::Num(i as f64), Value::Nominal((i % 3) as u32)],
                i % 2,
            )
            .unwrap();
        }
        ds
    }

    #[test]
    fn push_and_access() {
        let ds = toy(5);
        assert_eq!(ds.len(), 5);
        assert_eq!(ds.value(2, 0), Value::Num(2.0));
        assert_eq!(ds.row_values(2), vec![Value::Num(2.0), Value::Nominal(2)]);
        assert_eq!(ds.label(3), 1);
        assert_eq!(ds.n_classes(), 2);
    }

    #[test]
    fn columns_are_typed_and_contiguous() {
        let ds = toy(4);
        assert_eq!(ds.num_column(0), &[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(ds.nominal_column(1), &[0, 1, 2, 0]);
        assert!(ds.column(0).as_nominal().is_none());
        assert!(ds.column(1).as_num().is_none());
    }

    #[test]
    fn push_unlabeled_stores_the_placeholder_label() {
        let mut ds = toy(0);
        ds.push_unlabeled(vec![Value::Num(7.0), Value::Nominal(1)])
            .unwrap();
        assert_eq!(ds.len(), 1);
        assert_eq!(ds.label(0), 0);
        // Schema validation still applies.
        assert!(ds.push_unlabeled(vec![Value::Num(7.0)]).is_err());
    }

    #[test]
    fn rejects_invalid_rows() {
        let mut ds = toy(0);
        assert!(ds.push(vec![Value::Num(0.0)], 0).is_err());
        assert!(ds
            .push(vec![Value::Num(0.0), Value::Nominal(0)], 7)
            .is_err());
        assert!(ds
            .push(vec![Value::Nominal(0), Value::Nominal(0)], 0)
            .is_err());
        // A rejected row must not leave partial column writes behind.
        assert_eq!(ds.len(), 0);
        assert_eq!(ds.num_column(0).len(), 0);
    }

    #[test]
    fn append_columns_bulk() {
        let mut ds = toy(2);
        ds.append_columns(
            vec![Column::num(vec![10.0, 11.0]), Column::nominal(vec![2, 0])],
            vec![1, 0],
        )
        .unwrap();
        assert_eq!(ds.len(), 4);
        assert_eq!(ds.num_column(0), &[0.0, 1.0, 10.0, 11.0]);
        assert_eq!(ds.labels(), &[0, 1, 1, 0]);
    }

    #[test]
    fn append_columns_validates() {
        let mut ds = toy(0);
        // Wrong arity.
        assert!(ds
            .append_columns(vec![Column::num(vec![1.0])], vec![0])
            .is_err());
        // Kind mismatch.
        assert!(ds
            .append_columns(
                vec![Column::nominal(vec![0]), Column::nominal(vec![0])],
                vec![0]
            )
            .is_err());
        // Ragged columns.
        assert!(ds
            .append_columns(
                vec![Column::num(vec![1.0, 2.0]), Column::nominal(vec![0])],
                vec![0]
            )
            .is_err());
        // Out-of-range nominal code.
        assert!(ds
            .append_columns(
                vec![Column::num(vec![1.0]), Column::nominal(vec![9])],
                vec![0]
            )
            .is_err());
        // Non-finite numeric.
        assert!(ds
            .append_columns(
                vec![Column::num(vec![f64::NAN]), Column::nominal(vec![0])],
                vec![0]
            )
            .is_err());
        // Out-of-range label.
        assert!(ds
            .append_columns(
                vec![Column::num(vec![1.0]), Column::nominal(vec![0])],
                vec![5]
            )
            .is_err());
        // Nothing was committed by the failed appends.
        assert_eq!(ds.len(), 0);
    }

    #[test]
    fn distribution_and_majority() {
        let ds = toy(7); // labels 0,1,0,1,0,1,0 -> 4 zeros, 3 ones
        assert_eq!(ds.class_distribution(), vec![4, 3]);
        assert_eq!(ds.majority_class(), 0);
        assert!((ds.skew() - 4.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn sequential_split_preserves_order() {
        let ds = toy(10);
        let (head, tail) = ds.split(4, SplitMethod::Sequential);
        assert_eq!(head.len(), 4);
        assert_eq!(tail.len(), 6);
        assert_eq!(head.value(0, 0), Value::Num(0.0));
        assert_eq!(tail.value(0, 0), Value::Num(4.0));
    }

    #[test]
    fn shuffled_split_is_deterministic_and_partitioning() {
        let ds = toy(20);
        let (h1, t1) = ds.split(10, SplitMethod::Shuffled(42));
        let (h2, _) = ds.split(10, SplitMethod::Shuffled(42));
        assert_eq!(h1, h2);
        let mut seen: Vec<f64> = h1
            .num_column(0)
            .iter()
            .chain(t1.num_column(0))
            .copied()
            .collect();
        seen.sort_by(f64::total_cmp);
        assert_eq!(seen, (0..20).map(|i| i as f64).collect::<Vec<_>>());
    }

    #[test]
    fn subset_selects_rows() {
        let ds = toy(6);
        let sub = ds.subset(&[5, 0, 3]);
        assert_eq!(sub.len(), 3);
        assert_eq!(sub.value(0, 0), Value::Num(5.0));
        assert_eq!(sub.value(2, 0), Value::Num(3.0));
        assert_eq!(sub.labels(), &[1, 0, 1]);
    }

    #[test]
    fn numeric_range_works() {
        let ds = toy(6);
        assert_eq!(ds.numeric_range(0), Some((0.0, 5.0)));
        assert_eq!(ds.numeric_range(1), None);
        assert_eq!(toy(0).numeric_range(0), None);
    }

    #[test]
    fn from_rows_validates() {
        let schema = Schema::new(vec![Attribute::numeric("x")]);
        let ok = Dataset::from_rows(
            schema.clone(),
            vec!["A".into()],
            vec![vec![Value::Num(1.0)]],
            vec![0],
        );
        assert!(ok.is_ok());
        let bad = Dataset::from_rows(
            schema,
            vec!["A".into()],
            vec![vec![Value::Num(1.0)]],
            vec![1],
        );
        assert!(bad.is_err());
    }

    #[test]
    fn row_major_and_columnar_construction_agree() {
        // The cross-layout pin at the unit level: pushing rows and bulk
        // appending columns must produce identical datasets.
        let by_rows = toy(9);
        let mut by_cols = toy(0);
        by_cols
            .append_columns(
                vec![
                    Column::num((0..9).map(|i| i as f64).collect()),
                    Column::nominal((0..9).map(|i| (i % 3) as u32).collect()),
                ],
                (0..9).map(|i| i % 2).collect(),
            )
            .unwrap();
        assert_eq!(by_rows, by_cols);
    }

    #[test]
    fn serde_roundtrip() {
        let ds = toy(4);
        let json = serde_json::to_string(&ds).unwrap();
        let back: Dataset = serde_json::from_str(&json).unwrap();
        assert_eq!(ds, back);
    }
}
