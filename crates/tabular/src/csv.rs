//! CSV ingest and export for datasets.
//!
//! Format: header row of attribute names plus a final `class` column; nominal
//! values are written as category names, numerics with full precision. This
//! is a deliberately small hand-rolled reader/writer (the pre-approved crate
//! set has no CSV crate and the format we need is a strict subset: no quoting
//! or embedded commas — generated identifiers never contain either).
//!
//! Reading is **streaming**: [`read_csv_streaming`] parses each line
//! directly into typed column buffers and bulk-appends them to the dataset
//! in fixed-size chunks ([`Dataset::append_columns`]). No intermediate
//! `Vec<Vec<Value>>` of boxed rows is ever built, so peak memory beyond the
//! dataset itself is one chunk of column staging. Parse errors carry the
//! 1-based line number ([`TabularError::Csv`]).

use std::io::{BufRead, Write};

use crate::{AttrKind, ClassId, Column, Dataset, Schema, TabularError, Value};

/// Rows staged per bulk append during streaming reads. Bounds the staging
/// memory while keeping per-append validation amortized.
const CHUNK_ROWS: usize = 4096;

/// Writes `ds` as CSV to `out`.
pub fn write_csv<W: Write>(ds: &Dataset, out: &mut W) -> std::io::Result<()> {
    write_csv_header(ds.schema(), out)?;
    write_csv_rows(ds, out)
}

/// Writes the header line for `schema` (attribute names plus `class`).
/// Split out from [`write_csv`] so chunked producers (the datagen
/// streaming writer) can emit the identical format without materializing
/// the whole dataset.
pub fn write_csv_header<W: Write>(schema: &Schema, out: &mut W) -> std::io::Result<()> {
    let names: Vec<&str> = schema
        .attributes()
        .iter()
        .map(|a| a.name.as_str())
        .chain(std::iter::once("class"))
        .collect();
    writeln!(out, "{}", names.join(","))
}

/// Writes the data rows of `ds` (no header) in [`write_csv`]'s row
/// format — the chunk-append counterpart of [`write_csv_header`].
pub fn write_csv_rows<W: Write>(ds: &Dataset, out: &mut W) -> std::io::Result<()> {
    for i in 0..ds.len() {
        for (a, attr) in ds.schema().attributes().iter().enumerate() {
            match (&attr.kind, ds.column(a)) {
                (AttrKind::Nominal { categories }, Column::Nominal(codes)) => {
                    write!(out, "{},", categories[codes[i] as usize])?
                }
                (_, col) => write!(out, "{},", col.value(i))?,
            }
        }
        writeln!(out, "{}", ds.class_names()[ds.label(i)])?;
    }
    Ok(())
}

/// Per-chunk column staging for the streaming reader.
struct ChunkStage {
    columns: Vec<Column>,
    labels: Vec<ClassId>,
}

impl ChunkStage {
    fn new(schema: &Schema) -> Self {
        ChunkStage {
            columns: schema
                .attributes()
                .iter()
                .map(|a| Column::empty_for(&a.kind))
                .collect(),
            labels: Vec::new(),
        }
    }

    fn len(&self) -> usize {
        self.labels.len()
    }

    fn flush_into(&mut self, ds: &mut Dataset, line: usize) -> crate::Result<()> {
        if self.labels.is_empty() {
            return Ok(());
        }
        let columns = self
            .columns
            .iter_mut()
            .map(|c| {
                let empty = match c {
                    Column::Num(_) => Column::num(Vec::new()),
                    Column::Nominal(_) => Column::nominal(Vec::new()),
                };
                std::mem::replace(c, empty)
            })
            .collect();
        let labels = std::mem::take(&mut self.labels);
        // The parser validated every cell, so this only fails on logic
        // errors; map them to the chunk's last line for diagnosability.
        ds.append_columns(columns, labels)
            .map_err(|e| TabularError::Csv {
                line,
                msg: format!("chunk append failed: {e}"),
            })
    }
}

/// Reads a dataset written by [`write_csv`] with constant staging memory:
/// each line is parsed straight into typed column buffers which are
/// bulk-appended every [`CHUNK_ROWS`] rows.
///
/// Errors carry the 1-based line number of the offending row (the header is
/// line 1), so a malformed row in the middle of a million-row file is
/// reported precisely — and nothing after it is consumed.
pub fn read_csv_streaming<R: BufRead>(
    schema: Schema,
    class_names: Vec<String>,
    input: R,
) -> crate::Result<Dataset> {
    let csv_err = |line: usize, msg: String| TabularError::Csv { line, msg };
    let mut lines = input.lines();
    let header = lines
        .next()
        .ok_or_else(|| csv_err(1, "missing header".into()))?
        .map_err(|e| csv_err(1, e.to_string()))?;
    // `BufRead::lines()` splits on `\n` only, so CRLF files keep the `\r`
    // on every line; strip it before splitting into cells.
    let header = strip_cr(&header);
    let cols = header.split(',').count();
    if cols != schema.arity() + 1 {
        return Err(csv_err(
            1,
            format!(
                "header has {} columns, expected {}",
                cols,
                schema.arity() + 1
            ),
        ));
    }

    let mut ds = Dataset::new(schema, class_names);
    let mut stage = ChunkStage::new(ds.schema());
    let arity = ds.schema().arity();
    for (k, line) in lines.enumerate() {
        let lineno = k + 2; // 1-based, after the header
        let raw = line.map_err(|e| csv_err(lineno, e.to_string()))?;
        // Strip the CRLF remnant first: a bare `\r` line (blank line in a
        // CRLF file) must be skipped like any other empty line.
        let line = strip_cr(&raw);
        if line.is_empty() {
            continue;
        }
        let mut cells = line.split(',');
        for a in 0..arity {
            let cell = cells
                .next()
                .ok_or_else(|| csv_err(lineno, format!("{} cells, expected {}", a, arity + 1)))?;
            let value = parse_cell(&ds.schema().attribute(a).kind, cell)
                .map_err(|msg| csv_err(lineno, msg))?;
            match (value, &mut stage.columns[a]) {
                (Value::Num(x), Column::Num(xs)) => xs.push(x),
                (Value::Nominal(code), Column::Nominal(cs)) => cs.push(code),
                _ => unreachable!("stage columns mirror the schema kinds"),
            }
        }
        let class_cell = cells
            .next()
            .ok_or_else(|| csv_err(lineno, format!("{arity} cells, expected {}", arity + 1)))?
            .trim();
        if cells.next().is_some() {
            return Err(csv_err(
                lineno,
                format!("too many cells, expected {}", arity + 1),
            ));
        }
        // Any error aborts the whole read (the partial dataset is dropped),
        // so a half-staged row can never leak out.
        let label = ds
            .class_names()
            .iter()
            .position(|c| c == class_cell)
            .ok_or_else(|| csv_err(lineno, format!("unknown class {class_cell:?}")))?;
        stage.labels.push(label);
        if stage.len() >= CHUNK_ROWS {
            stage.flush_into(&mut ds, lineno)?;
        }
    }
    stage.flush_into(&mut ds, 0)?;
    Ok(ds)
}

/// Drops the trailing `\r` that [`BufRead::lines`] leaves on every line of
/// a CRLF file (`lines()` splits on `\n` only).
fn strip_cr(line: &str) -> &str {
    line.strip_suffix('\r').unwrap_or(line)
}

/// Parses one CSV cell against an attribute kind — the single source of
/// cell semantics shared by [`read_csv_streaming`], [`parse_csv_block`],
/// and external ingest pipelines (`nr-store`). Surrounding whitespace is
/// ignored (Windows tools routinely pad cells, and the trailing cell of a
/// CRLF row would otherwise carry a stray `\r`).
pub fn parse_csv_cell(kind: &AttrKind, cell: &str) -> Result<Value, String> {
    parse_cell(kind, cell)
}

/// Parses a header-less block of CSV rows (each with a trailing class
/// column) into per-attribute column buffers plus labels — the unit of
/// work of a parallel chunked ingest. Semantics are identical to the body
/// loop of [`read_csv_streaming`]: cells are trimmed, a trailing `\r` per
/// line and empty lines are tolerated, and errors carry the absolute
/// 1-based line number `first_line + offset_within_block`.
pub fn parse_csv_block(
    schema: &Schema,
    class_names: &[String],
    block: &[u8],
    first_line: usize,
) -> crate::Result<(Vec<Column>, Vec<ClassId>)> {
    let csv_err = |line: usize, msg: String| TabularError::Csv { line, msg };
    let arity = schema.arity();
    let mut columns: Vec<Column> = schema
        .attributes()
        .iter()
        .map(|a| Column::empty_for(&a.kind))
        .collect();
    let mut labels: Vec<ClassId> = Vec::new();
    for (k, raw) in block.split(|&b| b == b'\n').enumerate() {
        let lineno = first_line + k;
        let raw = std::str::from_utf8(raw).map_err(|e| csv_err(lineno, e.to_string()))?;
        let line = strip_cr(raw);
        if line.is_empty() {
            continue;
        }
        let mut cells = line.split(',');
        for (a, col) in columns.iter_mut().enumerate() {
            let cell = cells
                .next()
                .ok_or_else(|| csv_err(lineno, format!("{} cells, expected {}", a, arity + 1)))?;
            let value =
                parse_cell(&schema.attribute(a).kind, cell).map_err(|msg| csv_err(lineno, msg))?;
            match (value, col) {
                (Value::Num(x), Column::Num(xs)) => xs.push(x),
                (Value::Nominal(code), Column::Nominal(cs)) => cs.push(code),
                _ => unreachable!("columns mirror the schema kinds"),
            }
        }
        let class_cell = cells
            .next()
            .ok_or_else(|| csv_err(lineno, format!("{arity} cells, expected {}", arity + 1)))?
            .trim();
        if cells.next().is_some() {
            return Err(csv_err(
                lineno,
                format!("too many cells, expected {}", arity + 1),
            ));
        }
        let label = class_names
            .iter()
            .position(|c| c == class_cell)
            .ok_or_else(|| csv_err(lineno, format!("unknown class {class_cell:?}")))?;
        labels.push(label);
    }
    Ok((columns, labels))
}

/// Parses one CSV cell against an attribute kind. Surrounding whitespace
/// is ignored (Windows tools routinely pad cells, and the trailing cell of
/// a CRLF row would otherwise carry a stray `\r`).
fn parse_cell(kind: &AttrKind, cell: &str) -> Result<Value, String> {
    let cell = cell.trim();
    match kind {
        AttrKind::Numeric => {
            let x: f64 = cell
                .parse()
                .map_err(|e| format!("bad number {cell:?}: {e}"))?;
            if !x.is_finite() {
                return Err(format!("non-finite number {cell:?}"));
            }
            Ok(Value::Num(x))
        }
        AttrKind::Nominal { categories } => {
            let code = categories
                .iter()
                .position(|c| c == cell)
                .ok_or_else(|| format!("unknown category {cell:?}"))?;
            Ok(Value::Nominal(code as u32))
        }
    }
}

/// Parses one header-less CSV row of attribute values (no class column)
/// against `schema` — the serving ingest path, where rows arrive without
/// labels. Cell whitespace and a trailing `\r` are tolerated exactly like
/// [`read_csv_streaming`] tolerates them.
pub fn parse_row(schema: &Schema, line: &str) -> Result<Vec<Value>, String> {
    let line = strip_cr(line);
    let mut values = Vec::with_capacity(schema.arity());
    let mut cells = line.split(',');
    for a in 0..schema.arity() {
        let cell = cells
            .next()
            .ok_or_else(|| format!("{} cells, expected {}", a, schema.arity()))?;
        values.push(parse_cell(&schema.attribute(a).kind, cell)?);
    }
    if cells.next().is_some() {
        return Err(format!("too many cells, expected {}", schema.arity()));
    }
    Ok(values)
}

/// Reads a dataset written by [`write_csv`], given its schema and class
/// names. Alias for [`read_csv_streaming`].
pub fn read_csv<R: BufRead>(
    schema: Schema,
    class_names: Vec<String>,
    input: R,
) -> crate::Result<Dataset> {
    read_csv_streaming(schema, class_names, input)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Attribute, Value};

    fn toy() -> Dataset {
        let schema = Schema::new(vec![
            Attribute::numeric("x"),
            Attribute::nominal("color", ["red", "green"]),
        ]);
        let mut ds = Dataset::new(schema, vec!["A".into(), "B".into()]);
        ds.push(vec![Value::Num(1.5), Value::Nominal(0)], 0)
            .unwrap();
        ds.push(vec![Value::Num(-2.0), Value::Nominal(1)], 1)
            .unwrap();
        ds
    }

    fn line_of(err: crate::Result<Dataset>) -> usize {
        match err {
            Err(TabularError::Csv { line, .. }) => line,
            other => panic!("expected csv error, got {other:?}"),
        }
    }

    #[test]
    fn roundtrip() {
        let ds = toy();
        let mut buf = Vec::new();
        write_csv(&ds, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.starts_with("x,color,class\n"));
        assert!(text.contains("1.5,red,A"));
        let back = read_csv(ds.schema().clone(), ds.class_names().to_vec(), &buf[..]).unwrap();
        assert_eq!(ds, back);
    }

    #[test]
    fn streaming_crosses_chunk_boundaries() {
        // More rows than one staging chunk: the chunked bulk appends must
        // reassemble the exact dataset.
        let schema = Schema::new(vec![
            Attribute::numeric("x"),
            Attribute::nominal("color", ["red", "green"]),
        ]);
        let mut ds = Dataset::new(schema, vec!["A".into(), "B".into()]);
        for i in 0..(CHUNK_ROWS + 123) {
            ds.push(
                vec![Value::Num(i as f64), Value::Nominal((i % 2) as u32)],
                i % 2,
            )
            .unwrap();
        }
        let mut buf = Vec::new();
        write_csv(&ds, &mut buf).unwrap();
        let back =
            read_csv_streaming(ds.schema().clone(), ds.class_names().to_vec(), &buf[..]).unwrap();
        assert_eq!(ds, back);
    }

    #[test]
    fn rejects_bad_header() {
        let ds = toy();
        let input = b"x,class\n1.0,A\n";
        let err = read_csv(ds.schema().clone(), ds.class_names().to_vec(), &input[..]);
        assert_eq!(line_of(err), 1);
    }

    #[test]
    fn rejects_unknown_class_with_line() {
        let ds = toy();
        let input = b"x,color,class\n1.0,red,A\n2.0,green,C\n";
        let err = read_csv(ds.schema().clone(), ds.class_names().to_vec(), &input[..]);
        assert_eq!(line_of(err), 3);
    }

    #[test]
    fn rejects_bad_number_with_line() {
        let ds = toy();
        let input = b"x,color,class\nfoo,red,A\n";
        let err = read_csv(ds.schema().clone(), ds.class_names().to_vec(), &input[..]);
        assert_eq!(line_of(err), 2);
    }

    #[test]
    fn malformed_row_mid_stream_is_located() {
        // A malformed row *after* the first staged chunk must still be
        // reported with its exact line number, and nothing ingested after
        // it.
        let ds = toy();
        let mut text = String::from("x,color,class\n");
        for i in 0..(CHUNK_ROWS + 50) {
            text.push_str(&format!("{}.0,red,A\n", i));
        }
        // CHUNK_ROWS + 50 good rows, then a bad one on line CHUNK_ROWS + 52.
        text.push_str("oops,red,A\n");
        text.push_str("1.0,green,B\n");
        let err = read_csv_streaming(
            ds.schema().clone(),
            ds.class_names().to_vec(),
            text.as_bytes(),
        );
        assert_eq!(line_of(err), CHUNK_ROWS + 52);
    }

    #[test]
    fn rejects_wrong_arity_rows() {
        let ds = toy();
        let short = b"x,color,class\n1.0,red\n";
        assert_eq!(
            line_of(read_csv(
                ds.schema().clone(),
                ds.class_names().to_vec(),
                &short[..]
            )),
            2
        );
        let long = b"x,color,class\n1.0,red,A,extra\n";
        assert_eq!(
            line_of(read_csv(
                ds.schema().clone(),
                ds.class_names().to_vec(),
                &long[..]
            )),
            2
        );
    }

    #[test]
    fn csv_error_displays_line() {
        let err = TabularError::Csv {
            line: 17,
            msg: "bad number".into(),
        };
        let text = err.to_string();
        assert!(text.contains("line 17"), "{text}");
    }

    #[test]
    fn reads_crlf_files() {
        // CRLF line endings: `lines()` keeps the `\r`, which used to break
        // the last cell of every row (numeric parse failure / unknown
        // class) and leave a bare `\r` line uncaught by the empty-line
        // skip.
        let ds = toy();
        let input = b"x,color,class\r\n1.5,red,A\r\n\r\n-2.0,green,B\r\n";
        let back = read_csv(ds.schema().clone(), ds.class_names().to_vec(), &input[..]).unwrap();
        assert_eq!(back, ds);
    }

    #[test]
    fn trims_cell_whitespace() {
        let ds = toy();
        let input = b"x,color,class\n 1.5 ,\tred, A\n-2.0, green ,B \n";
        let back = read_csv(ds.schema().clone(), ds.class_names().to_vec(), &input[..]).unwrap();
        assert_eq!(back, ds);
    }

    #[test]
    fn crlf_crosses_chunk_boundaries() {
        // The CRLF fix must hold on rows staged after the first bulk
        // append, not just the head of the file.
        let schema = Schema::new(vec![Attribute::numeric("x")]);
        let mut text = String::from("x,class\r\n");
        for i in 0..(CHUNK_ROWS + 7) {
            text.push_str(&format!("{i}.0,A\r\n"));
        }
        let back = read_csv(schema, vec!["A".into()], text.as_bytes()).unwrap();
        assert_eq!(back.len(), CHUNK_ROWS + 7);
        assert_eq!(back.num_column(0)[CHUNK_ROWS + 6], (CHUNK_ROWS + 6) as f64);
    }

    #[test]
    fn parse_row_matches_reader_semantics() {
        let ds = toy();
        let row = parse_row(ds.schema(), " 1.5 ,red\r").unwrap();
        assert_eq!(row, vec![Value::Num(1.5), Value::Nominal(0)]);
        assert!(parse_row(ds.schema(), "1.5").is_err(), "missing cell");
        assert!(parse_row(ds.schema(), "1.5,red,extra").is_err());
        assert!(parse_row(ds.schema(), "foo,red").is_err());
        assert!(parse_row(ds.schema(), "1.5,mauve").is_err());
        assert!(parse_row(ds.schema(), "inf,red").is_err(), "non-finite");
    }

    #[test]
    fn skips_empty_lines() {
        let ds = toy();
        let input = b"x,color,class\n1.0,red,A\n\n2.0,green,B\n";
        let back = read_csv(ds.schema().clone(), ds.class_names().to_vec(), &input[..]).unwrap();
        assert_eq!(back.len(), 2);
    }
}
