//! Minimal CSV round-trip for datasets.
//!
//! Format: header row of attribute names plus a final `class` column; nominal
//! values are written as category names, numerics with full precision. This
//! is a deliberately small hand-rolled reader/writer (the pre-approved crate
//! set has no CSV crate and the format we need is a strict subset: no quoting
//! or embedded commas — generated identifiers never contain either).

use std::io::{BufRead, Write};

use crate::{AttrKind, Dataset, Schema, TabularError, Value};

/// Writes `ds` as CSV to `out`.
pub fn write_csv<W: Write>(ds: &Dataset, out: &mut W) -> std::io::Result<()> {
    let names: Vec<&str> = ds
        .schema()
        .attributes()
        .iter()
        .map(|a| a.name.as_str())
        .chain(std::iter::once("class"))
        .collect();
    writeln!(out, "{}", names.join(","))?;
    for (row, label) in ds.iter() {
        for (i, v) in row.iter().enumerate() {
            let cell = match (&ds.schema().attribute(i).kind, v) {
                (AttrKind::Nominal { categories }, Value::Nominal(c)) => {
                    categories[*c as usize].clone()
                }
                _ => format!("{v}"),
            };
            write!(out, "{cell},")?;
        }
        writeln!(out, "{}", ds.class_names()[label])?;
    }
    Ok(())
}

/// Reads a dataset written by [`write_csv`], given its schema and class names.
pub fn read_csv<R: BufRead>(
    schema: Schema,
    class_names: Vec<String>,
    input: R,
) -> crate::Result<Dataset> {
    let mut lines = input.lines();
    let header = lines
        .next()
        .ok_or_else(|| TabularError::Csv("missing header".into()))?
        .map_err(|e| TabularError::Csv(e.to_string()))?;
    let cols: Vec<&str> = header.split(',').collect();
    if cols.len() != schema.arity() + 1 {
        return Err(TabularError::Csv(format!(
            "header has {} columns, expected {}",
            cols.len(),
            schema.arity() + 1
        )));
    }
    let mut ds = Dataset::new(schema, class_names);
    for (lineno, line) in lines.enumerate() {
        let line = line.map_err(|e| TabularError::Csv(e.to_string()))?;
        if line.is_empty() {
            continue;
        }
        let cells: Vec<&str> = line.split(',').collect();
        if cells.len() != ds.schema().arity() + 1 {
            return Err(TabularError::Csv(format!(
                "row {}: {} cells, expected {}",
                lineno + 2,
                cells.len(),
                ds.schema().arity() + 1
            )));
        }
        let mut row = Vec::with_capacity(ds.schema().arity());
        for (i, cell) in cells[..cells.len() - 1].iter().enumerate() {
            let v = match &ds.schema().attribute(i).kind {
                AttrKind::Numeric => Value::Num(cell.parse::<f64>().map_err(|e| {
                    TabularError::Csv(format!("row {}: bad number {cell:?}: {e}", lineno + 2))
                })?),
                AttrKind::Nominal { categories } => {
                    let code = categories.iter().position(|c| c == cell).ok_or_else(|| {
                        TabularError::Csv(format!("row {}: unknown category {cell:?}", lineno + 2))
                    })?;
                    Value::Nominal(code as u32)
                }
            };
            row.push(v);
        }
        let class_cell = cells[cells.len() - 1];
        let label = ds
            .class_names()
            .iter()
            .position(|c| c == class_cell)
            .ok_or_else(|| {
                TabularError::Csv(format!("row {}: unknown class {class_cell:?}", lineno + 2))
            })?;
        ds.push(row, label)?;
    }
    Ok(ds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Attribute;

    fn toy() -> Dataset {
        let schema = Schema::new(vec![
            Attribute::numeric("x"),
            Attribute::nominal("color", ["red", "green"]),
        ]);
        let mut ds = Dataset::new(schema, vec!["A".into(), "B".into()]);
        ds.push(vec![Value::Num(1.5), Value::Nominal(0)], 0)
            .unwrap();
        ds.push(vec![Value::Num(-2.0), Value::Nominal(1)], 1)
            .unwrap();
        ds
    }

    #[test]
    fn roundtrip() {
        let ds = toy();
        let mut buf = Vec::new();
        write_csv(&ds, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.starts_with("x,color,class\n"));
        assert!(text.contains("1.5,red,A"));
        let back = read_csv(ds.schema().clone(), ds.class_names().to_vec(), &buf[..]).unwrap();
        assert_eq!(ds, back);
    }

    #[test]
    fn rejects_bad_header() {
        let ds = toy();
        let input = b"x,class\n1.0,A\n";
        let err = read_csv(ds.schema().clone(), ds.class_names().to_vec(), &input[..]);
        assert!(err.is_err());
    }

    #[test]
    fn rejects_unknown_class() {
        let ds = toy();
        let input = b"x,color,class\n1.0,red,C\n";
        let err = read_csv(ds.schema().clone(), ds.class_names().to_vec(), &input[..]);
        assert!(matches!(err, Err(TabularError::Csv(_))));
    }

    #[test]
    fn rejects_bad_number() {
        let ds = toy();
        let input = b"x,color,class\nfoo,red,A\n";
        assert!(read_csv(ds.schema().clone(), ds.class_names().to_vec(), &input[..]).is_err());
    }

    #[test]
    fn skips_empty_lines() {
        let ds = toy();
        let input = b"x,color,class\n1.0,red,A\n\n2.0,green,B\n";
        let back = read_csv(ds.schema().clone(), ds.class_names().to_vec(), &input[..]).unwrap();
        assert_eq!(back.len(), 2);
    }
}
