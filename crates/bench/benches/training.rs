//! Phase-1 benchmark: network training, BFGS vs gradient descent.
//!
//! Backs the paper's claim that quasi-Newton training converges in far
//! fewer iterations than backpropagation (§2.1); the ablation table in
//! EXPERIMENTS.md is generated from these numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nr_bench::{bench_encoded, fresh_network};
use nr_nn::{Trainer, TrainingAlgorithm};
use nr_opt::{Bfgs, GradientDescent};

fn training(c: &mut Criterion) {
    let mut group = c.benchmark_group("training");
    group.sample_size(10);
    for &n in &[200usize, 500] {
        let (_, data) = bench_encoded(n);
        group.bench_with_input(BenchmarkId::new("bfgs-60", n), &n, |b, _| {
            let trainer = Trainer::new(TrainingAlgorithm::Bfgs(Bfgs::default().with_max_iters(60)));
            b.iter(|| {
                let mut net = fresh_network(7);
                trainer.train(&mut net, &data)
            });
        });
        group.bench_with_input(BenchmarkId::new("gd-600", n), &n, |b, _| {
            let trainer = Trainer::new(TrainingAlgorithm::GradientDescent(
                GradientDescent::default()
                    .with_learning_rate(0.05)
                    .with_max_iters(600),
            ));
            b.iter(|| {
                let mut net = fresh_network(7);
                trainer.train(&mut net, &data)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, training);
criterion_main!(benches);
