//! Phase-1 benchmark: network training, BFGS vs gradient descent, plus the
//! batched objective on a large synthetic workload.
//!
//! Backs the paper's claim that quasi-Newton training converges in far
//! fewer iterations than backpropagation (§2.1); the ablation table in
//! EXPERIMENTS.md is generated from these numbers. The `objective` group is
//! the training-side batch scoreboard: one full cross-entropy
//! value-and-gradient evaluation over 100k rows, single-threaded and with
//! auto worker threads (bit-identical results either way).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nr_bench::rowmajor::{induce_rowmajor, RowMajorDataset};
use nr_bench::{bench_dataset, bench_encoded, fresh_network};
use nr_nn::{CrossEntropyObjective, Penalty, Trainer, TrainingAlgorithm};
use nr_opt::{Bfgs, GradientDescent, Objective};
use nr_tree::{DecisionTree, TreeConfig};

fn training(c: &mut Criterion) {
    let mut group = c.benchmark_group("training");
    group.sample_size(10);
    for &n in &[200usize, 500] {
        let (_, data) = bench_encoded(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("bfgs-60", n), &n, |b, _| {
            let trainer = Trainer::new(TrainingAlgorithm::Bfgs(Bfgs::default().with_max_iters(60)));
            b.iter(|| {
                let mut net = fresh_network(7);
                trainer.train(&mut net, &data)
            });
        });
        group.bench_with_input(BenchmarkId::new("gd-600", n), &n, |b, _| {
            let trainer = Trainer::new(TrainingAlgorithm::GradientDescent(
                GradientDescent::default()
                    .with_learning_rate(0.05)
                    .with_max_iters(600),
            ));
            b.iter(|| {
                let mut net = fresh_network(7);
                trainer.train(&mut net, &data)
            });
        });
    }
    group.finish();
}

/// One batched value-and-gradient evaluation over the large workload.
fn objective(c: &mut Criterion) {
    let rows = if criterion::quick_mode() {
        10_000
    } else {
        100_000
    };
    let (_, data) = bench_encoded(rows);
    let net = fresh_network(7);
    let x = net.flatten_active();

    let mut group = c.benchmark_group(format!("objective-{rows}-rows"));
    group.sample_size(10);
    group.throughput(Throughput::Elements(rows as u64));
    for &(threads, label) in &[(1usize, "grad-1-thread"), (0, "grad-auto-threads")] {
        group.bench_function(label, |b| {
            let obj =
                CrossEntropyObjective::new(&net, &data, Penalty::default()).with_threads(threads);
            let mut g = vec![0.0; obj.dim()];
            b.iter(|| obj.value_and_gradient(&x, &mut g));
        });
    }
    group.finish();
}

/// The columnar-layout scoreboard for tree induction: the same C4.5
/// algorithm over typed column scans ([`DecisionTree::fit`]) vs the
/// seed-style row-major layout (`rows[r][a]` gathers through enum-tagged
/// `Vec<Vec<Value>>` storage). Pruning is off in both so the timing is
/// pure induction-time data access.
fn tree_induction(c: &mut Criterion) {
    let rows = if criterion::quick_mode() {
        2_000
    } else {
        10_000
    };
    let ds = bench_dataset(rows);
    let rowmajor = RowMajorDataset::from_columnar(&ds);
    let config = TreeConfig {
        prune: false,
        ..TreeConfig::default()
    };

    let mut group = c.benchmark_group(format!("tree-induction-{rows}-rows"));
    group.sample_size(10);
    group.throughput(Throughput::Elements(rows as u64));
    group.bench_function("columnar", |b| {
        b.iter(|| DecisionTree::fit(&ds, &config).n_leaves());
    });
    group.bench_function("seed-style-rowmajor", |b| {
        b.iter(|| induce_rowmajor(&rowmajor, config.min_leaf, config.max_depth));
    });
    group.finish();
}

criterion_group!(benches, training, objective, tree_induction);
criterion_main!(benches);
