//! Data generation and encoding throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nr_bench::bench_dataset;
use nr_datagen::{Function, Generator};
use nr_encode::Encoder;

fn generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("datagen");
    let gen = Generator::new(42).with_perturbation(0.05);
    for f in [Function::F2, Function::F7, Function::F10] {
        group.bench_with_input(
            BenchmarkId::new("generate-1000", f.to_string()),
            &f,
            |b, &f| {
                b.iter(|| gen.dataset(f, 1000));
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("encoding");
    let ds = bench_dataset(1000);
    let enc = Encoder::agrawal();
    group.bench_function("encode-1000x87", |b| {
        b.iter(|| enc.encode_dataset(&ds));
    });
    group.finish();
}

criterion_group!(benches, generation);
criterion_main!(benches);
