//! Ingest scoreboard: streaming CSV → columnar `Dataset` →
//! `Encoder::encode_dataset`, against the seed-style row-major load.
//!
//! The columnar refactor's acceptance bar: at 100k rows the streaming
//! reader must be measurably faster than parsing into `Vec<Vec<Value>>`
//! boxed rows, and hold a strictly lower peak allocation (one typed buffer
//! per column vs one heap `Vec` per tuple). Peak allocation is tracked by
//! a counting global allocator and asserted at the end, so the bench run
//! itself enforces the bar; timings land in `BENCH_ingest.json`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use nr_bench::bench_dataset;
use nr_bench::rowmajor::RowMajorDataset;
use nr_encode::Encoder;
use nr_tabular::read_csv_streaming;

/// Bytes currently allocated / high-water mark since the last reset.
static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

/// System allocator wrapped with live/peak byte counters.
struct CountingAlloc;

// The workspace denies `unsafe_code`; a measuring `GlobalAlloc` cannot be
// written without it, so this bench binary carves out the narrowest
// possible allowance: two delegating calls into `System`.
#[allow(unsafe_code)]
mod counting_impl {
    use super::*;

    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            let p = unsafe { System.alloc(layout) };
            if !p.is_null() {
                let live = LIVE.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
                PEAK.fetch_max(live, Ordering::Relaxed);
            }
            p
        }

        unsafe fn dealloc(&self, p: *mut u8, layout: Layout) {
            LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
            unsafe { System.dealloc(p, layout) }
        }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Runs `f` and returns its result plus the peak bytes allocated *above*
/// the live baseline at entry.
fn peak_above_baseline<T>(f: impl FnOnce() -> T) -> (T, usize) {
    let baseline = LIVE.load(Ordering::Relaxed);
    PEAK.store(baseline, Ordering::Relaxed);
    let out = f();
    let peak = PEAK.load(Ordering::Relaxed);
    (out, peak.saturating_sub(baseline))
}

fn ingest(c: &mut Criterion) {
    let rows = if criterion::quick_mode() {
        10_000
    } else {
        100_000
    };
    // One CSV artifact shared by every contender, generated up front.
    let ds = bench_dataset(rows);
    let mut csv = Vec::new();
    nr_tabular::write_csv(&ds, &mut csv).expect("write csv");
    let schema = ds.schema().clone();
    let class_names = ds.class_names().to_vec();
    let enc = Encoder::agrawal();
    drop(ds);

    let mut group = c.benchmark_group(format!("ingest-{rows}-rows"));
    group.sample_size(10);
    group.throughput(Throughput::Elements(rows as u64));
    group.bench_function("streaming-csv", |b| {
        b.iter(|| {
            read_csv_streaming(schema.clone(), class_names.clone(), &csv[..])
                .expect("parse")
                .len()
        });
    });
    group.bench_function("seed-style-rowmajor", |b| {
        b.iter(|| {
            RowMajorDataset::parse_csv(schema.clone(), class_names.clone(), &csv[..])
                .expect("parse")
                .len()
        });
    });
    group.bench_function("streaming-csv-then-encode", |b| {
        b.iter(|| {
            let ds =
                read_csv_streaming(schema.clone(), class_names.clone(), &csv[..]).expect("parse");
            enc.encode_dataset(&ds).rows()
        });
    });
    group.finish();

    // Peak-allocation comparison, measured once per layout outside the
    // timing loops. The columnar load must hold a strictly lower high-water
    // mark than the seed-style row-major load — this is the refactor's
    // memory acceptance bar, enforced by the bench run itself.
    let (columnar, peak_columnar) = peak_above_baseline(|| {
        read_csv_streaming(schema.clone(), class_names.clone(), &csv[..]).expect("parse")
    });
    let n_columnar = columnar.len();
    drop(columnar);
    let (rowmajor, peak_rowmajor) = peak_above_baseline(|| {
        RowMajorDataset::parse_csv(schema.clone(), class_names.clone(), &csv[..]).expect("parse")
    });
    let n_rowmajor = rowmajor.len();
    drop(rowmajor);
    assert_eq!(n_columnar, n_rowmajor);
    eprintln!(
        "  peak allocation loading {rows} rows: columnar {:.1} MiB vs seed-style row-major {:.1} MiB ({:.1}x)",
        peak_columnar as f64 / (1024.0 * 1024.0),
        peak_rowmajor as f64 / (1024.0 * 1024.0),
        peak_rowmajor as f64 / peak_columnar.max(1) as f64,
    );
    assert!(
        peak_columnar < peak_rowmajor,
        "columnar ingest must allocate strictly less than the row-major load \
         ({peak_columnar} vs {peak_rowmajor} bytes)"
    );
}

criterion_group!(benches, ingest);
criterion_main!(benches);
