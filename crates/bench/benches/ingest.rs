//! Ingest scoreboard: streaming CSV → columnar `Dataset` →
//! `Encoder::encode_dataset`, against the seed-style row-major load.
//!
//! The columnar refactor's acceptance bar: at 100k rows the streaming
//! reader must be measurably faster than parsing into `Vec<Vec<Value>>`
//! boxed rows, and hold a strictly lower peak allocation (one typed buffer
//! per column vs one heap `Vec` per tuple). Peak allocation is tracked by
//! a counting global allocator and asserted at the end, so the bench run
//! itself enforces the bar; timings land in `BENCH_ingest.json`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use nr_bench::bench_dataset;
use nr_bench::rowmajor::RowMajorDataset;
use nr_encode::Encoder;
use nr_tabular::read_csv_streaming;

/// Bytes currently allocated / high-water mark since the last reset.
static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

/// System allocator wrapped with live/peak byte counters.
struct CountingAlloc;

// The workspace denies `unsafe_code`; a measuring `GlobalAlloc` cannot be
// written without it, so this bench binary carves out the narrowest
// possible allowance: two delegating calls into `System`.
#[allow(unsafe_code)]
mod counting_impl {
    use super::*;

    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            let p = unsafe { System.alloc(layout) };
            if !p.is_null() {
                let live = LIVE.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
                PEAK.fetch_max(live, Ordering::Relaxed);
            }
            p
        }

        unsafe fn dealloc(&self, p: *mut u8, layout: Layout) {
            LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
            unsafe { System.dealloc(p, layout) }
        }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Runs `f` and returns its result plus the peak bytes allocated *above*
/// the live baseline at entry.
fn peak_above_baseline<T>(f: impl FnOnce() -> T) -> (T, usize) {
    let baseline = LIVE.load(Ordering::Relaxed);
    PEAK.store(baseline, Ordering::Relaxed);
    let out = f();
    let peak = PEAK.load(Ordering::Relaxed);
    (out, peak.saturating_sub(baseline))
}

fn ingest(c: &mut Criterion) {
    let rows = if criterion::quick_mode() {
        10_000
    } else {
        100_000
    };
    // One CSV artifact shared by every contender, generated up front.
    let ds = bench_dataset(rows);
    let mut csv = Vec::new();
    nr_tabular::write_csv(&ds, &mut csv).expect("write csv");
    let schema = ds.schema().clone();
    let class_names = ds.class_names().to_vec();
    let enc = Encoder::agrawal();
    drop(ds);

    let mut group = c.benchmark_group(format!("ingest-{rows}-rows"));
    group.sample_size(10);
    group.throughput(Throughput::Elements(rows as u64));
    group.bench_function("streaming-csv", |b| {
        b.iter(|| {
            read_csv_streaming(schema.clone(), class_names.clone(), &csv[..])
                .expect("parse")
                .len()
        });
    });
    group.bench_function("seed-style-rowmajor", |b| {
        b.iter(|| {
            RowMajorDataset::parse_csv(schema.clone(), class_names.clone(), &csv[..])
                .expect("parse")
                .len()
        });
    });
    group.bench_function("streaming-csv-then-encode", |b| {
        b.iter(|| {
            let ds =
                read_csv_streaming(schema.clone(), class_names.clone(), &csv[..]).expect("parse");
            enc.encode_dataset(&ds).rows()
        });
    });
    group.finish();

    // Peak-allocation comparison, measured once per layout outside the
    // timing loops. The columnar load must hold a strictly lower high-water
    // mark than the seed-style row-major load — this is the refactor's
    // memory acceptance bar, enforced by the bench run itself.
    let (columnar, peak_columnar) = peak_above_baseline(|| {
        read_csv_streaming(schema.clone(), class_names.clone(), &csv[..]).expect("parse")
    });
    let n_columnar = columnar.len();
    drop(columnar);
    let (rowmajor, peak_rowmajor) = peak_above_baseline(|| {
        RowMajorDataset::parse_csv(schema.clone(), class_names.clone(), &csv[..]).expect("parse")
    });
    let n_rowmajor = rowmajor.len();
    drop(rowmajor);
    assert_eq!(n_columnar, n_rowmajor);
    eprintln!(
        "  peak allocation loading {rows} rows: columnar {:.1} MiB vs seed-style row-major {:.1} MiB ({:.1}x)",
        peak_columnar as f64 / (1024.0 * 1024.0),
        peak_rowmajor as f64 / (1024.0 * 1024.0),
        peak_rowmajor as f64 / peak_columnar.max(1) as f64,
    );
    assert!(
        peak_columnar < peak_rowmajor,
        "columnar ingest must allocate strictly less than the row-major load \
         ({peak_columnar} vs {peak_rowmajor} bytes)"
    );
}

/// Out-of-core scoreboard: streaming CSV generation → mmap-backed
/// parallel ingest into spill segments → encode → score, with the
/// counting allocator asserting the whole pipeline's peak heap stays far
/// below the data size. Quick mode shrinks the workload to a smoke run;
/// the full run drives **10 million rows** (several hundred MiB of CSV)
/// and arms the bounded-heap bar.
fn out_of_core(c: &mut Criterion) {
    use nr_datagen::{agrawal_schema, class_names, Function, Generator};
    use nr_rules::Predictor;
    use nr_store::{ingest_csv_file, StoreConfig};

    let quick = criterion::quick_mode();
    let rows: usize = if quick { 50_000 } else { 10_000_000 };
    let seg_rows = if quick { 8_192 } else { 64 * 1024 };
    let dir = std::env::temp_dir().join(format!("nr-bench-ingest-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create bench scratch dir");
    let csv_path = dir.join("out-of-core.csv");
    let gen = Generator::new(42).with_perturbation(0.05);
    {
        // The generator streams; the CSV never exists in memory.
        let file = std::fs::File::create(&csv_path).expect("create csv");
        let mut out = std::io::BufWriter::new(file);
        gen.write_csv_streaming(Function::F2, rows, &mut out)
            .expect("stream csv");
    }
    let csv_bytes = std::fs::metadata(&csv_path).expect("csv metadata").len() as usize;

    let mut group = c.benchmark_group(format!("out-of-core-ingest-{rows}-rows"));
    group.sample_size(if quick { 3 } else { 2 });
    group.throughput(Throughput::Elements(rows as u64));
    group.bench_function("serial-streaming-reader", |b| {
        // The pre-store baseline: parse serially into one in-RAM dataset.
        b.iter(|| {
            let file = std::fs::File::open(&csv_path).expect("open csv");
            read_csv_streaming(
                agrawal_schema(),
                class_names(),
                std::io::BufReader::new(file),
            )
            .expect("parse")
            .len()
        });
    });
    for threads in [1usize, 2, 4] {
        group.bench_function(format!("mmap-spill-ingest-{threads}t"), |b| {
            b.iter(|| {
                ingest_csv_file(
                    agrawal_schema(),
                    class_names(),
                    &csv_path,
                    StoreConfig::spilling(seg_rows, dir.join("spill")).with_threads(threads),
                )
                .expect("ingest")
                .rows()
            });
        });
    }
    group.finish();

    // End-to-end bounded-heap run: ingest the whole file into mmap spill
    // segments, fit an encoder across every segment view, and score every
    // row segment-at-a-time through a compiled model — while the counting
    // allocator watches the high-water mark. The model itself trains on a
    // small in-RAM sample up front (training 10M rows is not the claim;
    // scoring them out-of-core is).
    let sample = gen.dataset(Function::F2, 1_000);
    let model = neurorule::NeuroRule::default()
        .with_encoder(Encoder::agrawal())
        .with_seed(3)
        .fit(&sample)
        .expect("sample model fits");
    let compiled = model.compile();
    drop(sample);
    let ((n_rows, n_scored, n_spill), peak) = peak_above_baseline(|| {
        let store = ingest_csv_file(
            agrawal_schema(),
            class_names(),
            &csv_path,
            StoreConfig::spilling(seg_rows, dir.join("spill")).with_threads(4),
        )
        .expect("ingest");
        let enc = Encoder::fit_views(store.views(), 5).expect("fit encoder over segments");
        let mut scored = 0usize;
        let mut encoded_rows = 0usize;
        for view in store.views() {
            // Encode batch fill and compiled scoring, one segment at a
            // time: only one segment's encoded batch is ever live.
            encoded_rows += enc.encode_view(&view).rows();
            scored += compiled.predict_batch(&view).len();
        }
        assert_eq!(encoded_rows, store.rows());
        (store.rows(), scored, store.n_spill_files())
    });
    assert_eq!(n_rows, rows);
    assert_eq!(n_scored, rows);
    assert!(n_spill > 0, "out-of-core run must actually spill");
    eprintln!(
        "  out-of-core ingest+encode+score of {rows} rows ({:.1} MiB csv): peak heap {:.1} MiB ({:.1}% of data)",
        csv_bytes as f64 / (1024.0 * 1024.0),
        peak as f64 / (1024.0 * 1024.0),
        100.0 * peak as f64 / csv_bytes as f64,
    );
    if !quick {
        // The tentpole's acceptance bar: the whole pipeline must hold its
        // peak heap well below the data size (quick mode's file is too
        // small for fixed overheads to make the ratio meaningful).
        assert!(
            peak * 4 < csv_bytes,
            "peak heap {peak} bytes must stay under a quarter of the {csv_bytes}-byte dataset"
        );
    }
    std::fs::remove_dir_all(&dir).expect("remove bench scratch dir");
}

/// Integrity-cost scoreboard: the same spill ingest with NRSEG02
/// verification on (the default: every segment seal re-reads the file
/// and checks header, region, and whole-file CRCs) versus explicitly
/// unchecked (`allow_unchecked`). The durability acceptance bar is that
/// verification costs **< 10% of ingest throughput**; the full run
/// enforces it here (quick mode's file is too small for the ratio to be
/// meaningful — fixed costs dominate), and both timings land in
/// `BENCH_ingest.json`.
fn checksum_cost(c: &mut Criterion) {
    use nr_datagen::{agrawal_schema, class_names, Function, Generator};
    use nr_store::{ingest_csv_file, StoreConfig};

    let quick = criterion::quick_mode();
    let rows: usize = if quick { 50_000 } else { 2_000_000 };
    let seg_rows = if quick { 8_192 } else { 64 * 1024 };
    let dir = std::env::temp_dir().join(format!("nr-bench-crc-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create bench scratch dir");
    let csv_path = dir.join("checksum-cost.csv");
    {
        let file = std::fs::File::create(&csv_path).expect("create csv");
        let mut out = std::io::BufWriter::new(file);
        Generator::new(42)
            .with_perturbation(0.05)
            .write_csv_streaming(Function::F2, rows, &mut out)
            .expect("stream csv");
    }
    let run = |unchecked: bool| {
        ingest_csv_file(
            agrawal_schema(),
            class_names(),
            &csv_path,
            StoreConfig::spilling(seg_rows, dir.join("spill"))
                .with_threads(4)
                .with_allow_unchecked(unchecked),
        )
        .expect("ingest")
        .rows()
    };

    let mut group = c.benchmark_group(format!("ingest-checksum-cost-{rows}-rows"));
    group.sample_size(if quick { 3 } else { 2 });
    group.throughput(Throughput::Elements(rows as u64));
    group.bench_function("spill-ingest-verified", |b| b.iter(|| run(false)));
    group.bench_function("spill-ingest-unchecked", |b| b.iter(|| run(true)));
    group.finish();

    // The acceptance assertion, on its own best-of-3 timings (criterion's
    // numbers go to the scoreboard; the bar is enforced here).
    let best = |unchecked: bool| {
        (0..3)
            .map(|_| {
                let t0 = std::time::Instant::now();
                assert_eq!(run(unchecked), rows);
                t0.elapsed()
            })
            .min()
            .expect("three timed runs")
    };
    let verified = best(false);
    let unchecked = best(true);
    let overhead = verified.as_secs_f64() / unchecked.as_secs_f64() - 1.0;
    eprintln!(
        "  NRSEG02 verification cost over {rows} rows: verified {:.2}s vs unchecked {:.2}s \
         ({:+.1}% throughput)",
        verified.as_secs_f64(),
        unchecked.as_secs_f64(),
        overhead * 100.0,
    );
    if !quick {
        assert!(
            overhead < 0.10,
            "checksummed ingest must cost < 10% throughput \
             (verified {verified:?} vs unchecked {unchecked:?})"
        );
    }
    std::fs::remove_dir_all(&dir).expect("remove bench scratch dir");
}

criterion_group!(benches, ingest, out_of_core, checksum_cost);
criterion_main!(benches);
