//! Inference-throughput benchmark: rules vs network vs decision tree.
//!
//! Backs the paper's §1 argument that explicit rules are cheap to apply to
//! large databases (they test a handful of attributes, no arithmetic),
//! while the network must encode every tuple and run a forward pass.

use criterion::{criterion_group, criterion_main, Criterion};
use nr_bench::{bench_dataset, pruned_network};
use nr_rulex::{extract, RxConfig};
use nr_tree::{to_rules, DecisionTree, TreeConfig};

fn inference(c: &mut Criterion) {
    let train = bench_dataset(500);
    let test = bench_dataset(1000);
    let (enc, data, net) = pruned_network(500);
    let rx = extract(&net, &enc, &data, train.class_names(), &RxConfig::default())
        .expect("extraction succeeds on the bench fixture");
    let tree = DecisionTree::fit(&train, &TreeConfig::default());
    let tree_rules = to_rules(&tree, &train);

    let mut group = c.benchmark_group("inference-1000-rows");
    group.bench_function("neurorule-rules", |b| {
        b.iter(|| {
            test.iter()
                .map(|(row, _)| rx.ruleset.predict(row))
                .sum::<usize>()
        });
    });
    group.bench_function("pruned-network", |b| {
        b.iter(|| {
            test.iter()
                .map(|(row, _)| net.classify(&enc.encode_row(row)))
                .sum::<usize>()
        });
    });
    group.bench_function("c45-tree", |b| {
        b.iter(|| test.iter().map(|(row, _)| tree.predict(row)).sum::<usize>());
    });
    group.bench_function("c45-rules", |b| {
        b.iter(|| {
            test.iter()
                .map(|(row, _)| tree_rules.predict(row))
                .sum::<usize>()
        });
    });
    group.finish();
}

criterion_group!(benches, inference);
criterion_main!(benches);
