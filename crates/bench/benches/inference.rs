//! Inference-throughput benchmark: rules vs network vs decision tree,
//! plus the batched-kernel scoreboard on a large synthetic workload.
//!
//! Backs the paper's §1 argument that explicit rules are cheap to apply to
//! large databases (they test a handful of attributes, no arithmetic),
//! while the network must encode every tuple and run a forward pass — and,
//! since the batch refactor, measures how much of that network cost the
//! dense row-major batch path claws back. The large group pits three ways
//! of classifying the same tuples against each other in one run:
//!
//! * `per-row-encode-classify` — the pre-batch hot path: encode each tuple,
//!   allocate, run a scalar forward pass;
//! * `per-row-preencoded` — per-row forward passes over the pre-encoded
//!   dataset with reused scratch buffers (allocation-free baseline);
//! * `batch` — [`nr_nn::Mlp::classify_batch`] over the dense
//!   [`nr_encode::EncodedDataset::batch`] layout.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use nr_bench::{bench_dataset, bench_encoded, pruned_network};
use nr_rulex::{extract, RxConfig};
use nr_tree::{to_rules, DecisionTree, TreeConfig};

fn inference(c: &mut Criterion) {
    let train = bench_dataset(500);
    let test = bench_dataset(1000);
    let (enc, data, net) = pruned_network(500);
    let rx = extract(&net, &enc, &data, train.class_names(), &RxConfig::default())
        .expect("extraction succeeds on the bench fixture");
    let tree = DecisionTree::fit(&train, &TreeConfig::default());
    let tree_rules = to_rules(&tree, &train);

    let mut group = c.benchmark_group("inference-1000-rows");
    group.throughput(Throughput::Elements(1000));
    group.bench_function("neurorule-rules", |b| {
        b.iter(|| {
            (0..test.len())
                .map(|i| rx.ruleset.predict_row(&test, i))
                .sum::<usize>()
        });
    });
    group.bench_function("pruned-network", |b| {
        // Deliberate legacy path: materialize + encode + classify per
        // tuple. The serving bench measures the batch replacements.
        b.iter(|| {
            (0..test.len())
                .map(|i| net.classify(&enc.encode_row(&test.row_values(i))))
                .sum::<usize>()
        });
    });
    group.bench_function("c45-tree", |b| {
        b.iter(|| {
            (0..test.len())
                .map(|i| tree.predict_row(&test, i))
                .sum::<usize>()
        });
    });
    group.bench_function("c45-rules", |b| {
        b.iter(|| {
            (0..test.len())
                .map(|i| tree_rules.predict_row(&test, i))
                .sum::<usize>()
        });
    });
    group.finish();
}

/// The batch-kernel scoreboard: per-row vs batched classification of the
/// same rows, same network, one bench run.
fn batch_inference(c: &mut Criterion) {
    let rows = if criterion::quick_mode() {
        10_000
    } else {
        100_000
    };
    let raw = bench_dataset(rows);
    let (enc, data) = bench_encoded(rows);
    let (_, _, net) = pruned_network(500);

    let mut group = c.benchmark_group(format!("inference-batch-{rows}-rows"));
    group.sample_size(10);
    group.throughput(Throughput::Elements(rows as u64));
    group.bench_function("per-row-encode-classify", |b| {
        // Deliberate legacy path (the pre-batch hot loop, row_values shim
        // included) — it is the baseline this group measures against.
        b.iter(|| {
            (0..raw.len())
                .map(|i| net.classify(&enc.encode_row(&raw.row_values(i))))
                .sum::<usize>()
        });
    });
    group.bench_function("per-row-preencoded", |b| {
        let mut hidden = vec![0.0; net.n_hidden()];
        let mut out = vec![0.0; net.n_outputs()];
        b.iter(|| {
            (0..data.rows())
                .map(|i| {
                    net.forward_into(data.input(i), &mut hidden, &mut out);
                    nr_nn::argmax(&out)
                })
                .sum::<usize>()
        });
    });
    group.bench_function("batch", |b| {
        b.iter(|| net.classify_batch(&data).into_iter().sum::<usize>());
    });
    group.finish();
}

criterion_group!(benches, inference, batch_inference);
criterion_main!(benches);
