//! Serving-throughput benchmark: compiled rules vs the interpreted rule
//! path vs the network batch path, plus multi-thread scaling through one
//! shared `Arc<ServeModel>`.
//!
//! This is the scoreboard for the paper's §1 claim that extracted rules
//! are cheap to apply to large databases, measured on the serving
//! surfaces a deployment would actually use:
//!
//! * `compiled-rules` — [`nr_serve::CompiledRules`]'s production path:
//!   shared-prefix decision DAG, fused column sweeps, chunk-parallel
//!   batches (the group name is stable across engine generations so the
//!   repro history stays comparable);
//! * `interpreted-rules` — the reference `RuleSet::predict_row` loop
//!   (per row: walk rules, short-circuit conditions);
//! * `network-batch` — [`nr_serve::NetworkScorer`]: encode the view,
//!   classify on the matrix kernels (what serving the *network* to the
//!   same database costs);
//! * `hybrid` — compiled rules with network fallback for unmatched rows.
//!
//! The `dag-vs-table-vs-interpreted` group is the engine-generation
//! scoreboard: the DAG program (auto-parallel and pinned to one thread)
//! against the retained pre-DAG predicate-table engine and the
//! interpreted loop, same workload.
//!
//! The shared-model group scores the same 100k rows split into disjoint
//! chunks across N threads through one `Arc<ServeModel>` — the lock-free
//! scaling story (results stay bit-identical; the workspace concurrency
//! test pins that).
//!
//! In full (non-quick) mode the run **asserts** the acceptance bars:
//! compiled batch scoring must beat the interpreted per-row path by ≥ 2×,
//! and the DAG program must beat the predicate-table engine by ≥ 1.5×,
//! both at 100k rows on one core.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use nr_bench::{bench_dataset, pruned_network};
use nr_rules::Predictor;
use nr_rulex::{extract, RxConfig};
use nr_serve::{ServeMode, ServeModel};
use nr_tabular::Dataset;

/// Fits the serving fixture: a rule set extracted from the standard
/// pruned network, bundled with that network into a `ServeModel`.
fn fixture() -> (ServeModel, nr_rules::RuleSet) {
    let train = bench_dataset(500);
    let (enc, data, net) = pruned_network(500);
    let rx = extract(&net, &enc, &data, train.class_names(), &RxConfig::default())
        .expect("extraction succeeds on the bench fixture");
    let model = ServeModel::new(&rx.ruleset, enc, net, ServeMode::Rules);
    (model, rx.ruleset)
}

fn workload_rows() -> usize {
    if criterion::quick_mode() {
        10_000
    } else {
        100_000
    }
}

fn serving(c: &mut Criterion) {
    let rows = workload_rows();
    let (model, ruleset) = fixture();
    let test = bench_dataset(rows);
    let view = test.view();

    let mut group = c.benchmark_group(format!("serving-{rows}-rows"));
    group.sample_size(10);
    group.throughput(Throughput::Elements(rows as u64));
    group.bench_function("compiled-rules", |b| {
        b.iter(|| model.rules().predict_batch(&view).len());
    });
    group.bench_function("interpreted-rules", |b| {
        b.iter(|| {
            (0..test.len())
                .map(|i| ruleset.predict_row(&test, i))
                .sum::<usize>()
        });
    });
    group.bench_function("network-batch", |b| {
        b.iter(|| model.network().predict_batch(&view).len());
    });
    let hybrid = model.clone().with_mode(ServeMode::Hybrid);
    group.bench_function("hybrid", |b| {
        b.iter(|| hybrid.predict_batch(&view).len());
    });
    group.finish();

    // Engine-generation scoreboard: DAG (auto threads and pinned to one)
    // vs the retained predicate-table engine vs the interpreted loop.
    let mut group = c.benchmark_group(format!("dag-vs-table-vs-interpreted-{rows}-rows"));
    group.sample_size(10);
    group.throughput(Throughput::Elements(rows as u64));
    group.bench_function("dag", |b| {
        b.iter(|| model.rules().predict_batch(&view).len());
    });
    group.bench_function("dag-1-thread", |b| {
        b.iter(|| model.rules().predict_batch_with(&view, 1, 8192).len());
    });
    group.bench_function("predicate-table", |b| {
        b.iter(|| model.rules().predict_batch_table(&view).len());
    });
    group.bench_function("interpreted", |b| {
        b.iter(|| {
            (0..test.len())
                .map(|i| ruleset.predict_row(&test, i))
                .sum::<usize>()
        });
    });
    group.finish();

    if !criterion::quick_mode() {
        assert_compiled_beats_interpreted(&model, &ruleset, &test);
        assert_dag_beats_the_table(&model, &test);
    }
}

/// The acceptance bar, self-enforced like the `ingest` bench's allocation
/// assertion: at 100k rows on one core, the compiled batch path must be
/// at least 2× the interpreted per-row path (best of a few reps each, so
/// scheduler noise can't fail a healthy build).
fn assert_compiled_beats_interpreted(
    model: &ServeModel,
    ruleset: &nr_rules::RuleSet,
    test: &Dataset,
) {
    let view = test.view();
    let best = |f: &mut dyn FnMut() -> usize| -> std::time::Duration {
        (0..5)
            .map(|_| {
                let t0 = std::time::Instant::now();
                criterion::black_box(f());
                t0.elapsed()
            })
            .min()
            .expect("non-empty reps")
    };
    let compiled = best(&mut || model.rules().predict_batch(&view).len());
    let interpreted = best(&mut || {
        (0..test.len())
            .map(|i| ruleset.predict_row(test, i))
            .sum::<usize>()
    });
    let speedup = interpreted.as_secs_f64() / compiled.as_secs_f64();
    eprintln!(
        "compiled {compiled:.2?} vs interpreted {interpreted:.2?} -> {speedup:.2}x (bar: 2x)"
    );
    assert!(
        speedup >= 2.0,
        "compiled rule scoring must beat the interpreted path by >= 2x, got {speedup:.2}x"
    );
}

/// The DAG-generation bar: at 100k rows on **one thread** (so the margin
/// is prefix sharing + fused sweeps, not parallelism), the DAG program
/// must be at least 1.5× the retained predicate-table engine.
fn assert_dag_beats_the_table(model: &ServeModel, test: &Dataset) {
    let view = test.view();
    let best = |f: &mut dyn FnMut() -> usize| -> std::time::Duration {
        (0..5)
            .map(|_| {
                let t0 = std::time::Instant::now();
                criterion::black_box(f());
                t0.elapsed()
            })
            .min()
            .expect("non-empty reps")
    };
    let dag = best(&mut || model.rules().predict_batch_with(&view, 1, 8192).len());
    let table = best(&mut || model.rules().predict_batch_table(&view).len());
    let speedup = table.as_secs_f64() / dag.as_secs_f64();
    eprintln!("dag {dag:.2?} vs predicate-table {table:.2?} -> {speedup:.2}x (bar: 1.5x)");
    assert!(
        speedup >= 1.5,
        "the DAG program must beat the predicate-table engine by >= 1.5x, got {speedup:.2}x"
    );
}

/// Multi-thread scaling: disjoint chunks of the same workload scored
/// through one shared `Arc<ServeModel>`.
fn shared_model(c: &mut Criterion) {
    let rows = workload_rows();
    let (model, _) = fixture();
    let model = Arc::new(model);
    let test = bench_dataset(rows);

    let mut group = c.benchmark_group(format!("serving-shared-arc-{rows}-rows"));
    group.sample_size(10);
    group.throughput(Throughput::Elements(rows as u64));
    for threads in [1usize, 2, 4] {
        // Disjoint contiguous chunks, one per thread.
        let chunks = test.view().chunks(threads);
        group.bench_function(format!("{threads}-threads"), |b| {
            b.iter(|| {
                std::thread::scope(|scope| {
                    let handles: Vec<_> = chunks
                        .iter()
                        .map(|view| {
                            let model = Arc::clone(&model);
                            let view = view.clone();
                            scope.spawn(move || model.predict_batch(&view).len())
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().unwrap())
                        .sum::<usize>()
                })
            });
        });
    }
    group.finish();
}

criterion_group!(benches, serving, shared_model);
criterion_main!(benches);
