//! Phase-3 benchmark: rule extraction (RX) from a pruned network.

use criterion::{criterion_group, criterion_main, Criterion};
use nr_bench::pruned_network;
use nr_rulex::{cluster_activations, extract, RxConfig};

fn extraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("extraction");
    group.sample_size(10);
    let (enc, data, net) = pruned_network(500);
    let class_names = vec!["A".to_string(), "B".to_string()];
    group.bench_function("rx-f2-500", |b| {
        b.iter(|| extract(&net, &enc, &data, &class_names, &RxConfig::default()));
    });
    group.finish();

    // The clustering step alone (Figure 4 step 1) on synthetic activations.
    let mut group = c.benchmark_group("clustering");
    let values: Vec<f64> = (0..10_000)
        .map(|i| ((i * 2654435761usize) % 2000) as f64 / 1000.0 - 1.0)
        .collect();
    group.bench_function("online-10k", |b| {
        b.iter(|| cluster_activations(&values, 0.6));
    });
    group.finish();
}

criterion_group!(benches, extraction);
criterion_main!(benches);
