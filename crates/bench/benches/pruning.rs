//! Phase-2 benchmark: the NP pruning loop on a trained network — the
//! scoreboard for the incremental pruning engine.
//!
//! Two workload groups (the 300-tuple quick fixture and the paper-sized
//! 1000-tuple fixture), each measuring both engines on identical trained
//! networks and retraining budgets:
//!
//! * `strict` — the reference engine: full retrain every round, full
//!   saliency rescan, whole-network checkpoints (the pre-incremental
//!   implementation's cost model, bit-compatible with its trace);
//! * `fast` — the incremental engine: retrain-on-demand behind batched
//!   accuracy gates, warm-started budgeted retraining, cached saliencies,
//!   delta checkpoints, parallel candidate gating.
//!
//! Throughput is reported as rounds/sec (each engine's own accepted-round
//! count). In full (non-quick) mode the run **asserts** the acceptance
//! bar: the fast engine must beat the strict engine by ≥ 2× on the
//! 300-tuple group. `NR_BENCH_QUICK=1` shrinks samples and skips the
//! 1000-tuple group; `BENCH_pruning.json` is written either way.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use nr_bench::trained_network;
use nr_encode::EncodedDataset;
use nr_nn::{Mlp, Trainer, TrainingAlgorithm};
use nr_opt::Bfgs;
use nr_prune::{prune, PruneConfig, PruneMode};

/// Short retraining budget keeping a single bench iteration tractable
/// (shared by both engines so the comparison is apples to apples).
fn bench_config(mode: PruneMode) -> PruneConfig {
    PruneConfig {
        retrain: Trainer::new(TrainingAlgorithm::Bfgs(
            Bfgs::default().with_max_iters(30).with_grad_tol(1e-3),
        )),
        mode,
        ..PruneConfig::default()
    }
}

fn pruning(c: &mut Criterion) {
    let sizes: &[usize] = if criterion::quick_mode() {
        &[300]
    } else {
        &[300, 1000]
    };
    for &n in sizes {
        let (_, data, net) = trained_network(n);
        let mut group = c.benchmark_group(format!("pruning-f2-{n}"));
        group.sample_size(10);
        for mode in [PruneMode::Fast, PruneMode::Strict] {
            let config = bench_config(mode);
            // Rounds are a property of the run, not the input; measure
            // once so the group can report rounds/sec per engine.
            let rounds = {
                let mut candidate = net.clone();
                prune(&mut candidate, &data, &config).rounds
            };
            group.throughput(Throughput::Elements(rounds as u64));
            let label = match mode {
                PruneMode::Fast => "fast",
                PruneMode::Strict => "strict",
            };
            group.bench_function(label, |b| {
                b.iter(|| {
                    let mut candidate = net.clone();
                    prune(&mut candidate, &data, &config)
                });
            });
        }
        group.finish();

        if n == 300 && !criterion::quick_mode() {
            assert_fast_beats_strict(&net, &data);
        }
    }
}

/// The acceptance bar, self-enforced like the `serving`/`ingest` benches:
/// on the 300-tuple fixture the incremental engine must be at least 2× the
/// reference engine (best of a few reps each, so scheduler noise can't
/// fail a healthy build). The quality side of the bar rides along: the
/// fast run may not stop earlier (more links) or below the floor.
fn assert_fast_beats_strict(net: &Mlp, data: &EncodedDataset) {
    let best = |config: &PruneConfig| -> (std::time::Duration, nr_prune::PruneOutcome) {
        (0..5)
            .map(|_| {
                let mut candidate = net.clone();
                let t0 = std::time::Instant::now();
                let outcome = prune(&mut candidate, data, config);
                (t0.elapsed(), outcome)
            })
            .min_by_key(|(t, _)| *t)
            .expect("non-empty reps")
    };
    let (fast_time, fast) = best(&bench_config(PruneMode::Fast));
    let (strict_time, strict) = best(&bench_config(PruneMode::Strict));
    let speedup = strict_time.as_secs_f64() / fast_time.as_secs_f64();
    eprintln!(
        "fast {fast_time:.2?} ({} links) vs strict {strict_time:.2?} ({} links) \
         -> {speedup:.2}x (bar: 2x)",
        fast.remaining_links, strict.remaining_links
    );
    assert!(
        speedup >= 2.0,
        "incremental pruning must beat the reference engine by >= 2x, got {speedup:.2}x"
    );
    assert!(
        fast.remaining_links <= strict.remaining_links,
        "fast mode may not stop earlier: {} vs {} links",
        fast.remaining_links,
        strict.remaining_links
    );
    let floor = bench_config(PruneMode::Fast).accuracy_floor;
    assert!(
        fast.final_accuracy >= floor,
        "fast mode broke the accuracy floor: {} < {floor}",
        fast.final_accuracy
    );
}

criterion_group!(benches, pruning);
criterion_main!(benches);
