//! Phase-2 benchmark: the NP pruning loop on a trained network.

use criterion::{criterion_group, criterion_main, Criterion};
use nr_bench::trained_network;
use nr_nn::{Trainer, TrainingAlgorithm};
use nr_opt::Bfgs;
use nr_prune::{prune, PruneConfig};

fn pruning(c: &mut Criterion) {
    let mut group = c.benchmark_group("pruning");
    group.sample_size(10);
    let (_, data, net) = trained_network(300);
    // Short retraining budget keeps a single bench iteration tractable.
    let config = PruneConfig {
        retrain: Trainer::new(TrainingAlgorithm::Bfgs(
            Bfgs::default().with_max_iters(30).with_grad_tol(1e-3),
        )),
        ..PruneConfig::default()
    };
    group.bench_function("np-f2-300", |b| {
        b.iter(|| {
            let mut candidate = net.clone();
            prune(&mut candidate, &data, &config)
        });
    });
    group.finish();
}

criterion_group!(benches, pruning);
criterion_main!(benches);
