//! Baseline benchmark: C4.5 induction and C4.5rules conversion.
//!
//! The paper concedes that C4.5 trains much faster than the network
//! pipeline (§5); this bench quantifies that gap next to `training`/
//! `pruning`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nr_datagen::{Function, Generator};
use nr_tree::{to_rules, DecisionTree, TreeConfig};

fn baselines(c: &mut Criterion) {
    let gen = Generator::new(42).with_perturbation(0.05);
    let mut group = c.benchmark_group("c45");
    for f in [Function::F2, Function::F4] {
        let train = gen.dataset(f, 1000);
        group.bench_with_input(
            BenchmarkId::new("fit-1000", f.to_string()),
            &train,
            |b, ds| {
                b.iter(|| DecisionTree::fit(ds, &TreeConfig::default()));
            },
        );
        let tree = DecisionTree::fit(&train, &TreeConfig::default());
        group.bench_with_input(
            BenchmarkId::new("to-rules-1000", f.to_string()),
            &(tree, train),
            |b, (tree, ds)| {
                b.iter(|| to_rules(tree, ds));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, baselines);
criterion_main!(benches);
