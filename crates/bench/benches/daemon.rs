//! Serving-daemon load bench: end-to-end over real sockets, not a
//! criterion microbench. The harness in `nr_daemon::load` spawns a
//! daemon, drives mixed single-row/bulk traffic from closed-loop client
//! fleets, and measures p50/p99 latency and rows/sec with the
//! batch-former on (`max_batch` 64) versus request-at-a-time
//! (`max_batch` 1), then hot-swaps models under load.
//!
//! Output goes to `BENCH_daemon.json` (same contract as the criterion
//! shim: cwd or `NR_BENCH_OUT_DIR`). `NR_BENCH_QUICK=1` shrinks the
//! fleets to a smoke run; the ≥2× coalescing bar arms only in full
//! runs, while the hot-swap zero-failure/zero-mixed-version bars are
//! always on. The run ends with the chaos scenario, whose SLO bars
//! (zero deadline misses, fast sheds, clean drain, zero hung threads)
//! are asserted in every mode — a hung thread or a dirty drain fails
//! this bench, and therefore the CI job that runs it.

fn main() {
    let quick = std::env::var("NR_BENCH_QUICK").is_ok_and(|v| v == "1");
    let report = nr_daemon::load::run_and_write(quick);
    println!(
        "daemon/coalesced: {:.0} rows/s (p50 {:.1}us p99 {:.1}us, {} batches, largest {})",
        report.coalesced.rows_per_sec,
        report.coalesced.p50_us,
        report.coalesced.p99_us,
        report.coalesced.batches,
        report.coalesced.largest_batch,
    );
    println!(
        "daemon/uncoalesced: {:.0} rows/s (p50 {:.1}us p99 {:.1}us)",
        report.uncoalesced.rows_per_sec, report.uncoalesced.p50_us, report.uncoalesced.p99_us,
    );
    println!(
        "daemon/speedup: {:.2}x{}",
        report.speedup,
        if report.quick {
            " (quick mode: >=2x bar not armed)"
        } else {
            " (>=2x bar armed and passed)"
        },
    );
    println!(
        "daemon/swap: {} requests over {} swaps, {} failed, {} mixed-version",
        report.swap.requests, report.swap.swaps, report.swap.failed, report.swap.mixed_version,
    );
    let chaos = &report.chaos;
    println!(
        "daemon/chaos: {:.1}x saturation, {:.0}% shed rate, accepted p50 {:.1}ms p99 {:.1}ms \
         ({} deadline misses), shed p99 {:.2}ms, {} panics answered, drain clean={} \
         ({} hung threads)",
        chaos.saturation,
        chaos.shed_rate * 100.0,
        chaos.accepted_p50_us / 1_000.0,
        chaos.accepted_p99_us / 1_000.0,
        chaos.deadline_misses,
        chaos.shed_p99_us / 1_000.0,
        chaos.panic_500,
        chaos.drain.clean,
        chaos.drain.hung_threads,
    );
}
