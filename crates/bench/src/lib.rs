//! Shared fixtures for the Criterion benchmarks.
//!
//! The benches live in `benches/`; this library only provides the common
//! setup (datasets, trained networks) so each bench measures exactly one
//! phase of the pipeline.

#![deny(missing_docs)]

pub mod rowmajor;

use nr_datagen::{Function, Generator};
use nr_encode::{EncodedDataset, Encoder};
use nr_nn::{Mlp, Trainer};
use nr_prune::{prune, PruneConfig};
use nr_tabular::Dataset;

/// Standard bench dataset: Function 2, 5% perturbation.
pub fn bench_dataset(n: usize) -> Dataset {
    Generator::new(42)
        .with_perturbation(0.05)
        .dataset(Function::F2, n)
}

/// Encoded version of [`bench_dataset`].
pub fn bench_encoded(n: usize) -> (Encoder, EncodedDataset) {
    let enc = Encoder::agrawal();
    let data = enc.encode_dataset(&bench_dataset(n));
    (enc, data)
}

/// A freshly initialized paper-shaped network (87 × 4 × 2).
pub fn fresh_network(seed: u64) -> Mlp {
    Mlp::random(87, 4, 2, seed)
}

/// A trained (unpruned) network on `n` tuples.
pub fn trained_network(n: usize) -> (Encoder, EncodedDataset, Mlp) {
    let (enc, data) = bench_encoded(n);
    let mut net = fresh_network(12345);
    Trainer::default().train(&mut net, &data);
    (enc, data, net)
}

/// A trained and pruned network on `n` tuples.
pub fn pruned_network(n: usize) -> (Encoder, EncodedDataset, Mlp) {
    let (enc, data, mut net) = trained_network(n);
    prune(&mut net, &data, &PruneConfig::default());
    (enc, data, net)
}
