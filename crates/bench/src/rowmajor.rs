//! Seed-style row-major baselines for the layout benchmarks.
//!
//! Before the columnar refactor, `nr_tabular::Dataset` stored tuples as
//! `Vec<Vec<Value>>` — one heap allocation per row, enum-tagged cells, and
//! attribute access via `rows[r][a]` gathers. The benches keep a faithful
//! emulation of that layout (storage, CSV parse, and the C4.5 split search
//! over it) so the `ingest` and `training` scoreboards measure the
//! columnar layout against exactly what it replaced. **Not for production
//! use** — this exists to be slow in the representative way.

use std::io::BufRead;

use nr_tabular::{AttrKind, Schema, Value};

/// A row-major labeled dataset, structured like the pre-refactor layout.
pub struct RowMajorDataset {
    /// The shared schema.
    pub schema: Schema,
    /// Class display names.
    pub class_names: Vec<String>,
    /// One boxed `Vec<Value>` per tuple — the layout under test.
    pub rows: Vec<Vec<Value>>,
    /// One label per row.
    pub labels: Vec<usize>,
}

impl RowMajorDataset {
    /// Gathers a columnar dataset into the row-major layout.
    pub fn from_columnar(ds: &nr_tabular::Dataset) -> Self {
        RowMajorDataset {
            schema: ds.schema().clone(),
            class_names: ds.class_names().to_vec(),
            rows: (0..ds.len()).map(|i| ds.row_values(i)).collect(),
            labels: ds.labels().to_vec(),
        }
    }

    /// Seed-style CSV load: parse every line into a fresh `Vec<Value>` row
    /// and validate it cell by cell — the shape of the pre-refactor
    /// `read_csv` (one allocation per row plus per-value dispatch).
    pub fn parse_csv<R: BufRead>(
        schema: Schema,
        class_names: Vec<String>,
        input: R,
    ) -> Result<Self, String> {
        let mut lines = input.lines();
        let _header = lines
            .next()
            .ok_or("missing header")?
            .map_err(|e| e.to_string())?;
        let mut rows: Vec<Vec<Value>> = Vec::new();
        let mut labels = Vec::new();
        for line in lines {
            let line = line.map_err(|e| e.to_string())?;
            if line.is_empty() {
                continue;
            }
            let cells: Vec<&str> = line.split(',').collect();
            if cells.len() != schema.arity() + 1 {
                return Err(format!("bad arity {}", cells.len()));
            }
            let mut row = Vec::with_capacity(schema.arity());
            for (a, cell) in cells[..cells.len() - 1].iter().enumerate() {
                let v = match &schema.attribute(a).kind {
                    AttrKind::Numeric => {
                        Value::Num(cell.parse::<f64>().map_err(|e| e.to_string())?)
                    }
                    AttrKind::Nominal { categories } => Value::Nominal(
                        categories
                            .iter()
                            .position(|c| c == *cell)
                            .ok_or("unknown category")? as u32,
                    ),
                };
                row.push(v);
            }
            schema.validate_row(&row).map_err(|e| e.to_string())?;
            let label = class_names
                .iter()
                .position(|c| c == cells[cells.len() - 1])
                .ok_or("unknown class")?;
            rows.push(row);
            labels.push(label);
        }
        Ok(RowMajorDataset {
            schema,
            class_names,
            rows,
            labels,
        })
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn n_classes(&self) -> usize {
        self.class_names.len()
    }
}

fn entropy(counts: &[usize]) -> f64 {
    let total: usize = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let total = total as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / total;
            -p * p.log2()
        })
        .sum()
}

enum Split {
    Numeric { attribute: usize, threshold: f64 },
    Nominal { attribute: usize },
}

/// The pre-refactor gain-ratio split search: per-row `rows[r][a]` gathers
/// through the enum-tagged cells.
fn best_split(ds: &RowMajorDataset, rows: &[usize], min_leaf: usize) -> Option<(Split, f64, f64)> {
    let n_classes = ds.n_classes();
    let mut base_counts = vec![0usize; n_classes];
    for &r in rows {
        base_counts[ds.labels[r]] += 1;
    }
    let base_entropy = entropy(&base_counts);
    let mut candidates: Vec<(Split, f64, f64)> = Vec::new();

    for a in 0..ds.schema.arity() {
        if ds.schema.attribute(a).is_numeric() {
            let mut sorted: Vec<(f64, usize)> = rows
                .iter()
                .map(|&r| (ds.rows[r][a].expect_num(), ds.labels[r]))
                .collect();
            sorted.sort_by(|x, y| x.0.total_cmp(&y.0));
            let n = sorted.len();
            if n < 2 * min_leaf {
                continue;
            }
            let mut left = vec![0usize; n_classes];
            let mut best: Option<(f64, f64)> = None;
            for i in 0..n - 1 {
                left[sorted[i].1] += 1;
                if sorted[i].0 == sorted[i + 1].0 {
                    continue;
                }
                let n_left = i + 1;
                let n_right = n - n_left;
                if n_left < min_leaf || n_right < min_leaf {
                    continue;
                }
                let right: Vec<usize> = base_counts.iter().zip(&left).map(|(b, l)| b - l).collect();
                let cond = (n_left as f64 / n as f64) * entropy(&left)
                    + (n_right as f64 / n as f64) * entropy(&right);
                let gain = base_entropy - cond;
                let threshold = (sorted[i].0 + sorted[i + 1].0) / 2.0;
                if best.is_none_or(|(g, _)| gain > g) {
                    best = Some((gain, threshold));
                }
            }
            if let Some((gain, threshold)) = best {
                if gain > 1e-12 {
                    let n_left = sorted.iter().filter(|&&(v, _)| v <= threshold).count();
                    let split_info = entropy(&[n_left, n - n_left]);
                    let ratio = if split_info > 1e-12 {
                        gain / split_info
                    } else {
                        0.0
                    };
                    candidates.push((
                        Split::Numeric {
                            attribute: a,
                            threshold,
                        },
                        gain,
                        ratio,
                    ));
                }
            }
        } else {
            let card = ds.schema.attribute(a).cardinality().unwrap_or(0);
            let mut per_cat = vec![vec![0usize; n_classes]; card];
            for &r in rows {
                per_cat[ds.rows[r][a].expect_nominal() as usize][ds.labels[r]] += 1;
            }
            let n = rows.len() as f64;
            let nonempty: Vec<&Vec<usize>> = per_cat
                .iter()
                .filter(|c| c.iter().sum::<usize>() > 0)
                .collect();
            if nonempty.len() < 2 {
                continue;
            }
            let big = nonempty
                .iter()
                .filter(|c| c.iter().sum::<usize>() >= min_leaf)
                .count();
            if big < 2 {
                continue;
            }
            let mut cond = 0.0;
            let mut sizes = Vec::with_capacity(nonempty.len());
            for counts in &nonempty {
                let size: usize = counts.iter().sum();
                cond += (size as f64 / n) * entropy(counts);
                sizes.push(size);
            }
            let gain = base_entropy - cond;
            if gain > 1e-12 {
                let split_info = entropy(&sizes);
                let ratio = if split_info > 1e-12 {
                    gain / split_info
                } else {
                    0.0
                };
                candidates.push((Split::Nominal { attribute: a }, gain, ratio));
            }
        }
    }
    if candidates.is_empty() {
        return None;
    }
    let avg: f64 = candidates.iter().map(|c| c.1).sum::<f64>() / candidates.len() as f64;
    candidates
        .into_iter()
        .filter(|c| c.1 >= avg - 1e-12)
        .max_by(|x, y| x.2.total_cmp(&y.2).then(x.1.total_cmp(&y.1)))
}

/// Row-major C4.5 induction (no pruning); returns the leaf count so the
/// optimizer cannot elide the work. Mirrors the pre-refactor recursion:
/// index lists plus `rows[r][a]` gathers.
pub fn induce_rowmajor(ds: &RowMajorDataset, min_leaf: usize, max_depth: usize) -> usize {
    fn rec(
        ds: &RowMajorDataset,
        rows: &[usize],
        min_leaf: usize,
        depth: usize,
        max_depth: usize,
    ) -> usize {
        let mut counts = vec![0usize; ds.n_classes()];
        for &r in rows {
            counts[ds.labels[r]] += 1;
        }
        let majority = counts.iter().max().copied().unwrap_or(0);
        let errors = rows.len() - majority;
        if errors == 0 || rows.len() < 2 * min_leaf || depth >= max_depth {
            return 1;
        }
        let Some((split, _, _)) = best_split(ds, rows, min_leaf) else {
            return 1;
        };
        match split {
            Split::Numeric {
                attribute,
                threshold,
            } => {
                let (mut l, mut r) = (Vec::new(), Vec::new());
                for &row in rows {
                    if ds.rows[row][attribute].expect_num() <= threshold {
                        l.push(row);
                    } else {
                        r.push(row);
                    }
                }
                rec(ds, &l, min_leaf, depth + 1, max_depth)
                    + rec(ds, &r, min_leaf, depth + 1, max_depth)
            }
            Split::Nominal { attribute } => {
                let card = ds.schema.attribute(attribute).cardinality().unwrap_or(0);
                let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); card];
                for &row in rows {
                    buckets[ds.rows[row][attribute].expect_nominal() as usize].push(row);
                }
                buckets
                    .iter()
                    .filter(|b| !b.is_empty())
                    .map(|b| rec(ds, b, min_leaf, depth + 1, max_depth))
                    .sum()
            }
        }
    }
    let rows: Vec<usize> = (0..ds.len()).collect();
    rec(ds, &rows, min_leaf, 0, max_depth)
}
