//! The nine-attribute schema of Table 1.

use nr_tabular::{Attribute, Schema};

/// Number of attributes in the Agrawal schema.
pub const ATTRIBUTE_COUNT: usize = 9;

/// Symbolic indices of the nine attributes, in Table 1 order.
///
/// Using an enum instead of bare `usize` keeps the classification functions
/// readable and makes it impossible to mix up column positions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum AttrId {
    /// Salary, uniform in [20 000, 150 000].
    Salary = 0,
    /// Commission: 0 if salary ≥ 75 000, else uniform in [10 000, 75 000].
    Commission = 1,
    /// Age, uniform in [20, 80].
    Age = 2,
    /// Education level, uniform in {0, …, 4} (ordered).
    Elevel = 3,
    /// Make of car, uniform in {1, …, 20} (nominal).
    Car = 4,
    /// Zip code, uniform over 9 available codes (nominal).
    Zipcode = 5,
    /// House value, uniform in [0.5·k·100 000, 1.5·k·100 000] with k derived
    /// from the zipcode.
    Hvalue = 6,
    /// Years the house has been owned, uniform in {1, …, 30}.
    Hyears = 7,
    /// Total loan amount, uniform in [0, 500 000].
    Loan = 8,
}

impl AttrId {
    /// Column index of this attribute.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// All nine attributes in schema order.
    pub fn all() -> [AttrId; ATTRIBUTE_COUNT] {
        use AttrId::*;
        [
            Salary, Commission, Age, Elevel, Car, Zipcode, Hvalue, Hyears, Loan,
        ]
    }
}

/// Builds the Table 1 schema.
///
/// `elevel` is modeled as numeric because it is *ordered* (the paper
/// thermometer-codes it); `car` and `zipcode` are nominal.
pub fn agrawal_schema() -> Schema {
    Schema::new(vec![
        Attribute::numeric("salary"),
        Attribute::numeric("commission"),
        Attribute::numeric("age"),
        Attribute::numeric("elevel"),
        Attribute::nominal("car", (1..=20).map(|i| format!("car{i}"))),
        Attribute::nominal("zipcode", (1..=9).map(|i| format!("zip{i}"))),
        Attribute::numeric("hvalue"),
        Attribute::numeric("hyears"),
        Attribute::numeric("loan"),
    ])
}

/// The two class labels: `Group A` (id 0) and `Group B` (id 1).
pub fn class_names() -> Vec<String> {
    vec!["A".into(), "B".into()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_matches_table1() {
        let s = agrawal_schema();
        assert_eq!(s.arity(), ATTRIBUTE_COUNT);
        assert_eq!(s.attribute(AttrId::Salary.index()).name, "salary");
        assert_eq!(s.attribute(AttrId::Loan.index()).name, "loan");
        assert_eq!(s.attribute(AttrId::Car.index()).cardinality(), Some(20));
        assert_eq!(s.attribute(AttrId::Zipcode.index()).cardinality(), Some(9));
        assert!(s.attribute(AttrId::Elevel.index()).is_numeric());
    }

    #[test]
    fn attr_ids_cover_all_columns() {
        let ids = AttrId::all();
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(id.index(), i);
        }
    }

    #[test]
    fn two_classes() {
        assert_eq!(class_names(), vec!["A".to_string(), "B".to_string()]);
    }
}
