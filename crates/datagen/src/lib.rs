//! Synthetic database generator of Agrawal, Imielinski & Swami.
//!
//! NeuroRule's evaluation (§2.3, §4) uses the synthetic classification
//! benchmark of Agrawal et al., *Database mining: a performance perspective*
//! (IEEE TKDE 5(6), 1993): nine person/credit attributes (Table 1 of the
//! NeuroRule paper) and ten classification functions F1–F10 of increasing
//! complexity that assign each tuple to `Group A` or `Group B`. A
//! *perturbation factor* adds noise to the numeric attributes after the
//! label is assigned (the paper sets it to 5%).
//!
//! This crate reproduces that generator deterministically:
//!
//! ```
//! use nr_datagen::{Generator, Function};
//!
//! let gen = Generator::new(42).with_perturbation(0.05);
//! let train = gen.dataset(Function::F2, 1000);
//! assert_eq!(train.len(), 1000);
//! assert_eq!(train.schema().arity(), 9);
//! ```
//!
//! Functions F8 and F10 produce highly skewed labels (the NeuroRule paper
//! excludes them for that reason); they are implemented for completeness and
//! their skew is observable via [`nr_tabular::Dataset::skew`].

#![deny(missing_docs)]

mod functions;
mod generator;
mod person;
mod schema;

pub use functions::{Function, Group};
pub use generator::Generator;
pub use person::Person;
pub use schema::{agrawal_schema, class_names, AttrId, ATTRIBUTE_COUNT};
