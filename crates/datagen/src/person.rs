//! The raw tuple type produced by the generator.

use nr_tabular::Value;
use serde::{Deserialize, Serialize};

/// One synthetic tuple with the nine attributes of Table 1, in natural units.
///
/// `car` is in 1..=20 and `zipcode` in 1..=9, matching the paper's wording;
/// they are shifted to 0-based nominal codes when converted to a
/// [`nr_tabular::Dataset`] row.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Person {
    /// Salary in [20 000, 150 000].
    pub salary: f64,
    /// Commission: 0 when salary ≥ 75 000, else in [10 000, 75 000].
    pub commission: f64,
    /// Age in [20, 80].
    pub age: f64,
    /// Education level in {0, …, 4}.
    pub elevel: u32,
    /// Make of car in {1, …, 20}.
    pub car: u32,
    /// Zip code in {1, …, 9}.
    pub zipcode: u32,
    /// House value; depends on zipcode.
    pub hvalue: f64,
    /// Years the house has been owned, in {1, …, 30}.
    pub hyears: f64,
    /// Total loan amount in [0, 500 000].
    pub loan: f64,
}

impl Person {
    /// Converts to a row matching [`crate::agrawal_schema`].
    pub fn to_row(&self) -> Vec<Value> {
        vec![
            Value::Num(self.salary),
            Value::Num(self.commission),
            Value::Num(self.age),
            Value::Num(self.elevel as f64),
            Value::Nominal(self.car - 1),
            Value::Nominal(self.zipcode - 1),
            Value::Num(self.hvalue),
            Value::Num(self.hyears),
            Value::Num(self.loan),
        ]
    }

    /// Reconstructs a `Person` from a schema row (inverse of [`Self::to_row`]).
    pub fn from_row(row: &[Value]) -> Person {
        Person {
            salary: row[0].expect_num(),
            commission: row[1].expect_num(),
            age: row[2].expect_num(),
            elevel: row[3].expect_num() as u32,
            car: row[4].expect_nominal() + 1,
            zipcode: row[5].expect_nominal() + 1,
            hvalue: row[6].expect_num(),
            hyears: row[7].expect_num(),
            loan: row[8].expect_num(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Person {
        Person {
            salary: 50_000.0,
            commission: 20_000.0,
            age: 35.0,
            elevel: 2,
            car: 7,
            zipcode: 3,
            hvalue: 250_000.0,
            hyears: 12.0,
            loan: 100_000.0,
        }
    }

    #[test]
    fn row_roundtrip() {
        let p = sample();
        let row = p.to_row();
        assert_eq!(row.len(), 9);
        assert_eq!(Person::from_row(&row), p);
    }

    #[test]
    fn nominal_codes_are_zero_based() {
        let row = sample().to_row();
        assert_eq!(row[4], Value::Nominal(6)); // car 7 -> code 6
        assert_eq!(row[5], Value::Nominal(2)); // zip 3 -> code 2
    }

    #[test]
    fn row_validates_against_schema() {
        let schema = crate::agrawal_schema();
        assert!(schema.validate_row(&sample().to_row()).is_ok());
    }
}
