//! The ten classification functions of Agrawal et al.
//!
//! Each function maps a [`Person`] to `Group A` or `Group B`. F1–F3 test one
//! or two attributes, F4–F6 add nested predicates, and F7–F10 are linear
//! functions of several attributes ("disposable income" style). The NeuroRule
//! paper evaluates F1–F7 and F9; F8 and F10 are implemented but documented as
//! highly skewed (they label almost every tuple `A`).

use serde::{Deserialize, Serialize};

use crate::Person;

/// The two target groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Group {
    /// Group A (class id 0).
    A,
    /// Group B (class id 1).
    B,
}

impl Group {
    /// Class id used in datasets: `A` ↦ 0, `B` ↦ 1.
    #[inline]
    pub fn class_id(self) -> usize {
        match self {
            Group::A => 0,
            Group::B => 1,
        }
    }

    /// Inverse of [`Group::class_id`].
    #[inline]
    pub fn from_class_id(id: usize) -> Group {
        match id {
            0 => Group::A,
            1 => Group::B,
            _ => panic!("class id {id} out of range for two-group problems"),
        }
    }
}

/// Identifier for one of the ten classification functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Function {
    /// Age-band test.
    F1,
    /// Age bands × salary intervals (the paper's worked example).
    F2,
    /// Age bands × education level.
    F3,
    /// Age bands × (elevel ? salary-interval-1 : salary-interval-2).
    F4,
    /// Age bands × (salary interval ? loan-interval-1 : loan-interval-2).
    F5,
    /// Age bands × total-income (salary + commission) intervals.
    F6,
    /// Linear disposable income with loan.
    F7,
    /// Linear disposable income with education (highly skewed).
    F8,
    /// Linear disposable income with education and loan.
    F9,
    /// Linear disposable income with home equity (highly skewed).
    F10,
}

impl Function {
    /// All ten functions in order.
    pub fn all() -> [Function; 10] {
        use Function::*;
        [F1, F2, F3, F4, F5, F6, F7, F8, F9, F10]
    }

    /// The eight functions the paper evaluates (excludes skewed F8 and F10).
    pub fn evaluated() -> [Function; 8] {
        use Function::*;
        [F1, F2, F3, F4, F5, F6, F7, F9]
    }

    /// Function number (1–10).
    pub fn number(self) -> usize {
        use Function::*;
        match self {
            F1 => 1,
            F2 => 2,
            F3 => 3,
            F4 => 4,
            F5 => 5,
            F6 => 6,
            F7 => 7,
            F8 => 8,
            F9 => 9,
            F10 => 10,
        }
    }

    /// Parses a function number.
    pub fn from_number(n: usize) -> Option<Function> {
        Function::all().into_iter().find(|f| f.number() == n)
    }

    /// True for the functions the paper reports as highly skewed.
    pub fn is_skewed(self) -> bool {
        matches!(self, Function::F8 | Function::F10)
    }

    /// Applies the function to a tuple.
    pub fn classify(self, p: &Person) -> Group {
        let a = match self {
            Function::F1 => f1(p),
            Function::F2 => f2(p),
            Function::F3 => f3(p),
            Function::F4 => f4(p),
            Function::F5 => f5(p),
            Function::F6 => f6(p),
            Function::F7 => f7(p),
            Function::F8 => f8(p),
            Function::F9 => f9(p),
            Function::F10 => f10(p),
        };
        if a {
            Group::A
        } else {
            Group::B
        }
    }
}

impl std::fmt::Display for Function {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "F{}", self.number())
    }
}

#[inline]
fn between(x: f64, lo: f64, hi: f64) -> bool {
    lo <= x && x <= hi
}

/// F1: `A ⇔ age < 40 ∨ age ≥ 60`.
fn f1(p: &Person) -> bool {
    p.age < 40.0 || p.age >= 60.0
}

/// F2 (§2.3 of the NeuroRule paper):
/// `A ⇔ (age<40 ∧ 50K≤salary≤100K) ∨ (40≤age<60 ∧ 75K≤salary≤125K) ∨ (age≥60 ∧ 25K≤salary≤75K)`.
fn f2(p: &Person) -> bool {
    if p.age < 40.0 {
        between(p.salary, 50_000.0, 100_000.0)
    } else if p.age < 60.0 {
        between(p.salary, 75_000.0, 125_000.0)
    } else {
        between(p.salary, 25_000.0, 75_000.0)
    }
}

/// F3: age bands × education level bands.
fn f3(p: &Person) -> bool {
    if p.age < 40.0 {
        p.elevel <= 1
    } else if p.age < 60.0 {
        (1..=3).contains(&p.elevel)
    } else {
        (2..=4).contains(&p.elevel)
    }
}

/// F4 (Figure 7(a) of the NeuroRule paper): age bands where the salary
/// interval that qualifies depends on the education level.
fn f4(p: &Person) -> bool {
    if p.age < 40.0 {
        if p.elevel <= 1 {
            between(p.salary, 25_000.0, 75_000.0)
        } else {
            between(p.salary, 50_000.0, 100_000.0)
        }
    } else if p.age < 60.0 {
        if (1..=3).contains(&p.elevel) {
            between(p.salary, 50_000.0, 100_000.0)
        } else {
            between(p.salary, 75_000.0, 125_000.0)
        }
    } else if (2..=4).contains(&p.elevel) {
        between(p.salary, 50_000.0, 100_000.0)
    } else {
        between(p.salary, 25_000.0, 75_000.0)
    }
}

/// F5: age bands where the loan interval that qualifies depends on salary.
fn f5(p: &Person) -> bool {
    if p.age < 40.0 {
        if between(p.salary, 50_000.0, 100_000.0) {
            between(p.loan, 100_000.0, 300_000.0)
        } else {
            between(p.loan, 200_000.0, 400_000.0)
        }
    } else if p.age < 60.0 {
        if between(p.salary, 75_000.0, 125_000.0) {
            between(p.loan, 200_000.0, 400_000.0)
        } else {
            between(p.loan, 300_000.0, 500_000.0)
        }
    } else if between(p.salary, 25_000.0, 75_000.0) {
        between(p.loan, 300_000.0, 500_000.0)
    } else {
        between(p.loan, 100_000.0, 300_000.0)
    }
}

/// F6: like F2 but on total income (salary + commission).
fn f6(p: &Person) -> bool {
    let total = p.salary + p.commission;
    if p.age < 40.0 {
        between(total, 50_000.0, 100_000.0)
    } else if p.age < 60.0 {
        between(total, 75_000.0, 125_000.0)
    } else {
        between(total, 25_000.0, 75_000.0)
    }
}

/// F7: `A ⇔ ⅔·(salary+commission) − loan/5 − 20 000 > 0`.
fn f7(p: &Person) -> bool {
    2.0 * (p.salary + p.commission) / 3.0 - p.loan / 5.0 - 20_000.0 > 0.0
}

/// F8: `A ⇔ ⅔·(salary+commission) − 5000·elevel − 20 000 > 0` (highly skewed).
fn f8(p: &Person) -> bool {
    2.0 * (p.salary + p.commission) / 3.0 - 5_000.0 * p.elevel as f64 - 20_000.0 > 0.0
}

/// F9: `A ⇔ ⅔·(salary+commission) − 5000·elevel − loan/5 − 10 000 > 0`.
fn f9(p: &Person) -> bool {
    2.0 * (p.salary + p.commission) / 3.0 - 5_000.0 * p.elevel as f64 - p.loan / 5.0 - 10_000.0
        > 0.0
}

/// F10: like F9 but credits home equity instead of debiting the loan
/// (highly skewed).
fn f10(p: &Person) -> bool {
    let equity = if p.hyears >= 20.0 {
        p.hvalue * (p.hyears - 20.0) / 10.0
    } else {
        0.0
    };
    2.0 * (p.salary + p.commission) / 3.0 - 5_000.0 * p.elevel as f64 + equity / 5.0 - 10_000.0
        > 0.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Person {
        Person {
            salary: 60_000.0,
            commission: 20_000.0,
            age: 35.0,
            elevel: 0,
            car: 1,
            zipcode: 1,
            hvalue: 100_000.0,
            hyears: 10.0,
            loan: 50_000.0,
        }
    }

    #[test]
    fn group_class_ids() {
        assert_eq!(Group::A.class_id(), 0);
        assert_eq!(Group::B.class_id(), 1);
        assert_eq!(Group::from_class_id(0), Group::A);
        assert_eq!(Group::from_class_id(1), Group::B);
    }

    #[test]
    fn f1_age_bands() {
        let mut p = base();
        p.age = 30.0;
        assert_eq!(Function::F1.classify(&p), Group::A);
        p.age = 50.0;
        assert_eq!(Function::F1.classify(&p), Group::B);
        p.age = 65.0;
        assert_eq!(Function::F1.classify(&p), Group::A);
    }

    #[test]
    fn f2_matches_paper_definition() {
        let mut p = base();
        // age<40 & salary in [50K,100K] -> A
        p.age = 30.0;
        p.salary = 60_000.0;
        assert_eq!(Function::F2.classify(&p), Group::A);
        p.salary = 110_000.0;
        assert_eq!(Function::F2.classify(&p), Group::B);
        // 40<=age<60 needs [75K,125K]
        p.age = 50.0;
        p.salary = 110_000.0;
        assert_eq!(Function::F2.classify(&p), Group::A);
        p.salary = 60_000.0;
        assert_eq!(Function::F2.classify(&p), Group::B);
        // age>=60 needs [25K,75K]
        p.age = 70.0;
        p.salary = 60_000.0;
        assert_eq!(Function::F2.classify(&p), Group::A);
        p.salary = 110_000.0;
        assert_eq!(Function::F2.classify(&p), Group::B);
    }

    #[test]
    fn f2_boundaries_inclusive() {
        let mut p = base();
        p.age = 30.0;
        p.salary = 50_000.0;
        assert_eq!(Function::F2.classify(&p), Group::A);
        p.salary = 100_000.0;
        assert_eq!(Function::F2.classify(&p), Group::A);
        p.salary = 100_000.01;
        assert_eq!(Function::F2.classify(&p), Group::B);
    }

    #[test]
    fn f3_elevel_bands() {
        let mut p = base();
        p.age = 30.0;
        p.elevel = 1;
        assert_eq!(Function::F3.classify(&p), Group::A);
        p.elevel = 2;
        assert_eq!(Function::F3.classify(&p), Group::B);
        p.age = 50.0;
        p.elevel = 3;
        assert_eq!(Function::F3.classify(&p), Group::A);
        p.elevel = 0;
        assert_eq!(Function::F3.classify(&p), Group::B);
        p.age = 65.0;
        p.elevel = 4;
        assert_eq!(Function::F3.classify(&p), Group::A);
        p.elevel = 1;
        assert_eq!(Function::F3.classify(&p), Group::B);
    }

    #[test]
    fn f4_nested_elevel_salary() {
        let mut p = base();
        // age<40, elevel 0 -> salary in [25K,75K]
        p.age = 30.0;
        p.elevel = 0;
        p.salary = 30_000.0;
        assert_eq!(Function::F4.classify(&p), Group::A);
        p.salary = 90_000.0;
        assert_eq!(Function::F4.classify(&p), Group::B);
        // age<40, elevel 3 -> salary in [50K,100K]
        p.elevel = 3;
        p.salary = 90_000.0;
        assert_eq!(Function::F4.classify(&p), Group::A);
        p.salary = 30_000.0;
        assert_eq!(Function::F4.classify(&p), Group::B);
        // age>=60, elevel 2..4 -> [50K,100K]
        p.age = 70.0;
        p.elevel = 2;
        p.salary = 60_000.0;
        assert_eq!(Function::F4.classify(&p), Group::A);
        p.elevel = 0;
        assert_eq!(Function::F4.classify(&p), Group::A); // 60K also in [25K,75K]
        p.salary = 90_000.0;
        assert_eq!(Function::F4.classify(&p), Group::B);
    }

    #[test]
    fn f5_nested_salary_loan() {
        let mut p = base();
        p.age = 30.0;
        p.salary = 60_000.0; // in [50K,100K] -> loan must be [100K,300K]
        p.loan = 200_000.0;
        assert_eq!(Function::F5.classify(&p), Group::A);
        p.loan = 350_000.0;
        assert_eq!(Function::F5.classify(&p), Group::B);
        p.salary = 120_000.0; // else branch -> loan must be [200K,400K]
        assert_eq!(Function::F5.classify(&p), Group::A);
    }

    #[test]
    fn f6_total_income() {
        let mut p = base();
        p.age = 30.0;
        p.salary = 40_000.0;
        p.commission = 20_000.0; // total 60K in [50K,100K]
        assert_eq!(Function::F6.classify(&p), Group::A);
        p.commission = 70_000.0; // total 110K
        assert_eq!(Function::F6.classify(&p), Group::B);
    }

    #[test]
    fn f7_linear() {
        let mut p = base();
        p.salary = 90_000.0;
        p.commission = 0.0;
        p.loan = 100_000.0;
        // 60000 - 20000 - 20000 = 20000 > 0
        assert_eq!(Function::F7.classify(&p), Group::A);
        p.loan = 400_000.0; // 60000 - 80000 - 20000 < 0
        assert_eq!(Function::F7.classify(&p), Group::B);
    }

    #[test]
    fn f9_linear_with_elevel() {
        let mut p = base();
        p.salary = 60_000.0;
        p.commission = 0.0;
        p.elevel = 4;
        p.loan = 100_000.0;
        // 40000 - 20000 - 20000 - 10000 = -10000 <= 0
        assert_eq!(Function::F9.classify(&p), Group::B);
        p.loan = 0.0;
        assert_eq!(Function::F9.classify(&p), Group::A);
    }

    #[test]
    fn f10_equity_kicks_in_after_20_years() {
        let mut p = base();
        p.salary = 20_000.0;
        p.commission = 0.0;
        p.elevel = 4;
        // 13333 - 20000 - 10000 < 0 without equity
        p.hyears = 10.0;
        assert_eq!(Function::F10.classify(&p), Group::B);
        p.hyears = 30.0;
        p.hvalue = 1_000_000.0; // equity = 1e6 * 10/10 = 1e6; +200000
        assert_eq!(Function::F10.classify(&p), Group::A);
    }

    #[test]
    fn numbering_roundtrip() {
        for f in Function::all() {
            assert_eq!(Function::from_number(f.number()), Some(f));
        }
        assert_eq!(Function::from_number(0), None);
        assert_eq!(Function::from_number(11), None);
        assert_eq!(Function::F2.to_string(), "F2");
    }

    #[test]
    fn evaluated_excludes_skewed() {
        let eval = Function::evaluated();
        assert_eq!(eval.len(), 8);
        assert!(!eval.contains(&Function::F8));
        assert!(!eval.contains(&Function::F10));
        assert!(Function::F8.is_skewed());
        assert!(Function::F10.is_skewed());
        assert!(!Function::F2.is_skewed());
    }
}
