//! The seeded tuple generator with perturbation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use nr_tabular::{Column, Dataset};

use crate::{agrawal_schema, class_names, Function, Group, Person};

/// Attribute value ranges used by both generation and perturbation clamping.
mod ranges {
    pub const SALARY: (f64, f64) = (20_000.0, 150_000.0);
    pub const COMMISSION: (f64, f64) = (10_000.0, 75_000.0);
    pub const AGE: (f64, f64) = (20.0, 80.0);
    pub const HYEARS: (f64, f64) = (1.0, 30.0);
    pub const LOAN: (f64, f64) = (0.0, 500_000.0);
}

/// Deterministic generator for the Agrawal benchmark.
///
/// Tuples are drawn per Table 1; the class label is assigned by the chosen
/// [`Function`] *before* perturbation, then each continuous attribute is
/// perturbed by `r · p · range` with `r` uniform in [−0.5, 0.5] and clamped
/// back into its range (Agrawal et al.'s perturbation model; the NeuroRule
/// paper uses `p = 0.05`). This makes the learning problem noisy: a tuple
/// near a decision boundary may carry the label of its unperturbed self.
#[derive(Debug, Clone)]
pub struct Generator {
    seed: u64,
    perturbation: f64,
}

impl Generator {
    /// Creates a generator with the given seed and no perturbation.
    pub fn new(seed: u64) -> Self {
        Generator {
            seed,
            perturbation: 0.0,
        }
    }

    /// Sets the perturbation factor (the paper uses 0.05).
    pub fn with_perturbation(mut self, p: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "perturbation factor must be in [0,1)"
        );
        self.perturbation = p;
        self
    }

    /// The seed this generator was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The configured perturbation factor.
    pub fn perturbation(&self) -> f64 {
        self.perturbation
    }

    /// Draws one unperturbed tuple.
    fn draw(rng: &mut StdRng) -> Person {
        let salary = rng.gen_range(ranges::SALARY.0..=ranges::SALARY.1);
        let commission = if salary >= 75_000.0 {
            0.0
        } else {
            rng.gen_range(ranges::COMMISSION.0..=ranges::COMMISSION.1)
        };
        let age = rng.gen_range(ranges::AGE.0..=ranges::AGE.1);
        let elevel = rng.gen_range(0..=4u32);
        let car = rng.gen_range(1..=20u32);
        let zipcode = rng.gen_range(1..=9u32);
        // hvalue depends on zipcode: k = zipcode index (1..=9).
        let k = zipcode as f64;
        let hvalue = rng.gen_range(0.5 * k * 100_000.0..=1.5 * k * 100_000.0);
        let hyears = rng.gen_range(1..=30u32) as f64;
        let loan = rng.gen_range(ranges::LOAN.0..=ranges::LOAN.1);
        Person {
            salary,
            commission,
            age,
            elevel,
            car,
            zipcode,
            hvalue,
            hyears,
            loan,
        }
    }

    /// Perturbs the continuous attributes of `p` in place.
    fn perturb(&self, p: &mut Person, rng: &mut StdRng) {
        if self.perturbation == 0.0 {
            return;
        }
        let mut jiggle = |v: f64, (lo, hi): (f64, f64)| -> f64 {
            let r: f64 = rng.gen_range(-0.5..=0.5);
            (v + r * self.perturbation * (hi - lo)).clamp(lo, hi)
        };
        p.salary = jiggle(p.salary, ranges::SALARY);
        if p.commission > 0.0 {
            p.commission = jiggle(p.commission, ranges::COMMISSION);
        }
        p.age = jiggle(p.age, ranges::AGE);
        // hvalue's range depends on the zipcode-derived k.
        let k = p.zipcode as f64;
        p.hvalue = jiggle(p.hvalue, (0.5 * k * 100_000.0, 1.5 * k * 100_000.0));
        p.hyears = jiggle(p.hyears, ranges::HYEARS).round().clamp(1.0, 30.0);
        p.loan = jiggle(p.loan, ranges::LOAN);
    }

    /// An endless stream of labeled tuples for `function` — the single
    /// random stream behind [`Generator::tuples`],
    /// [`Generator::dataset`], and the chunked
    /// [`Generator::write_csv_streaming`]: however the consumer batches
    /// its pulls, tuple `i` is always the same tuple.
    ///
    /// Tuple draws and perturbation use *separate* random streams, so the
    /// same seed yields the same underlying tuples (and labels) with any
    /// perturbation factor — only the observed attribute values change.
    pub fn tuple_stream(&self, function: Function) -> impl Iterator<Item = (Person, Group)> + '_ {
        // Mix the function number into the stream so different functions get
        // independent draws even with the same base seed.
        let base = self.seed ^ (function.number() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = StdRng::seed_from_u64(base);
        let mut perturb_rng = StdRng::seed_from_u64(base ^ 0x5051_5253_5455_5657);
        std::iter::repeat_with(move || {
            let mut p = Self::draw(&mut rng);
            let label = function.classify(&p);
            self.perturb(&mut p, &mut perturb_rng);
            (p, label)
        })
    }

    /// Generates `n` labeled tuples for `function` (see
    /// [`Generator::tuple_stream`] for the randomness contract).
    pub fn tuples(&self, function: Function, n: usize) -> Vec<(Person, Group)> {
        self.tuple_stream(function).take(n).collect()
    }

    /// Builds a dataset from already-drawn tuples — the columnar scatter
    /// shared by the one-shot and chunked producers.
    fn collect_dataset(tuples: impl IntoIterator<Item = (Person, Group)>, cap: usize) -> Dataset {
        let mut salary = Vec::with_capacity(cap);
        let mut commission = Vec::with_capacity(cap);
        let mut age = Vec::with_capacity(cap);
        let mut elevel = Vec::with_capacity(cap);
        let mut car = Vec::with_capacity(cap);
        let mut zipcode = Vec::with_capacity(cap);
        let mut hvalue = Vec::with_capacity(cap);
        let mut hyears = Vec::with_capacity(cap);
        let mut loan = Vec::with_capacity(cap);
        let mut labels = Vec::with_capacity(cap);
        for (p, g) in tuples {
            salary.push(p.salary);
            commission.push(p.commission);
            age.push(p.age);
            elevel.push(p.elevel as f64);
            car.push(p.car - 1);
            zipcode.push(p.zipcode - 1);
            hvalue.push(p.hvalue);
            hyears.push(p.hyears);
            loan.push(p.loan);
            labels.push(g.class_id());
        }
        let mut ds = Dataset::new(agrawal_schema(), class_names());
        ds.append_columns(
            vec![
                Column::num(salary),
                Column::num(commission),
                Column::num(age),
                Column::num(elevel),
                Column::nominal(car),
                Column::nominal(zipcode),
                Column::num(hvalue),
                Column::num(hyears),
                Column::num(loan),
            ],
            labels,
        )
        .expect("generated columns match the schema");
        ds
    }

    /// Generates a labeled [`Dataset`] of `n` tuples for `function`.
    ///
    /// The tuples are written straight into typed column buffers and
    /// bulk-appended once ([`Dataset::append_columns`]) — one validation
    /// scan per column instead of per-row, per-value dispatch.
    pub fn dataset(&self, function: Function, n: usize) -> Dataset {
        Self::collect_dataset(self.tuples(function, n), n)
    }

    /// Writes `n` tuples for `function` as CSV with bounded memory:
    /// tuples are drawn from one continuous stream, staged in fixed-size
    /// chunks, and appended with [`nr_tabular::write_csv_rows`] — the
    /// output is **byte-identical** to `write_csv(&g.dataset(f, n))` at
    /// any `n`, while peak memory stays one chunk of columns. This is how
    /// the out-of-core benches materialize multi-gigabyte CSV inputs
    /// without first holding the dataset in RAM.
    pub fn write_csv_streaming<W: std::io::Write>(
        &self,
        function: Function,
        n: usize,
        out: &mut W,
    ) -> std::io::Result<()> {
        /// Rows staged per chunk (bounds the writer's memory).
        const WRITE_CHUNK_ROWS: usize = 8192;
        nr_tabular::write_csv_header(&agrawal_schema(), out)?;
        let mut stream = self.tuple_stream(function);
        let mut remaining = n;
        while remaining > 0 {
            let take = remaining.min(WRITE_CHUNK_ROWS);
            let chunk = Self::collect_dataset(stream.by_ref().take(take), take);
            nr_tabular::write_csv_rows(&chunk, out)?;
            remaining -= take;
        }
        Ok(())
    }

    /// Generates independent train/test datasets (distinct substreams).
    pub fn train_test(
        &self,
        function: Function,
        n_train: usize,
        n_test: usize,
    ) -> (Dataset, Dataset) {
        let train = self.dataset(function, n_train);
        let test = Generator {
            seed: self.seed.wrapping_add(0xDEAD_BEEF),
            ..*self
        }
        .dataset(function, n_test);
        (train, test)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AttrId;

    #[test]
    fn bulk_columnar_build_matches_row_pushes() {
        // `dataset()` writes fields straight into column buffers; this pins
        // its field-to-column mapping against `Person::to_row` (same order,
        // same 0-based nominal shifts) so the two can never drift apart.
        let g = Generator::new(7).with_perturbation(0.05);
        let bulk = g.dataset(Function::F3, 40);
        let mut pushed = Dataset::new(agrawal_schema(), class_names());
        for (p, grp) in g.tuples(Function::F3, 40) {
            pushed.push(p.to_row(), grp.class_id()).unwrap();
        }
        assert_eq!(bulk, pushed);
    }

    #[test]
    fn streaming_csv_writer_is_byte_identical_to_one_shot() {
        // Chunked writing must be invisible in the output: same bytes as
        // materializing the whole dataset and writing it once, including
        // at sizes that straddle the internal chunk boundary.
        let g = Generator::new(11).with_perturbation(0.05);
        for n in [0usize, 1, 8191, 8192, 8193, 20_000] {
            let mut one_shot = Vec::new();
            nr_tabular::write_csv(&g.dataset(Function::F5, n), &mut one_shot).unwrap();
            let mut streamed = Vec::new();
            g.write_csv_streaming(Function::F5, n, &mut streamed)
                .unwrap();
            assert_eq!(streamed, one_shot, "n = {n}");
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let g = Generator::new(7).with_perturbation(0.05);
        assert_eq!(g.dataset(Function::F2, 50), g.dataset(Function::F2, 50));
    }

    #[test]
    fn different_seeds_differ() {
        let a = Generator::new(1).dataset(Function::F2, 50);
        let b = Generator::new(2).dataset(Function::F2, 50);
        assert_ne!(a, b);
    }

    #[test]
    fn different_functions_get_different_draws() {
        let g = Generator::new(7);
        let a = g.dataset(Function::F1, 20);
        let b = g.dataset(Function::F2, 20);
        assert_ne!(a.row_values(0), b.row_values(0));
    }

    #[test]
    fn values_respect_table1_ranges() {
        let g = Generator::new(3).with_perturbation(0.05);
        for (p, _) in g.tuples(Function::F5, 500) {
            assert!(
                (20_000.0..=150_000.0).contains(&p.salary),
                "salary {}",
                p.salary
            );
            assert!(p.commission == 0.0 || (10_000.0..=75_000.0).contains(&p.commission));
            assert!((20.0..=80.0).contains(&p.age));
            assert!(p.elevel <= 4);
            assert!((1..=20).contains(&p.car));
            assert!((1..=9).contains(&p.zipcode));
            let k = p.zipcode as f64;
            assert!((0.5 * k * 100_000.0..=1.5 * k * 100_000.0).contains(&p.hvalue));
            assert!((1.0..=30.0).contains(&p.hyears));
            assert!((0.0..=500_000.0).contains(&p.loan));
        }
    }

    #[test]
    fn commission_zero_iff_high_salary_without_perturbation() {
        let g = Generator::new(11);
        for (p, _) in g.tuples(Function::F1, 500) {
            if p.salary >= 75_000.0 {
                assert_eq!(p.commission, 0.0);
            } else {
                assert!(p.commission >= 10_000.0);
            }
        }
    }

    #[test]
    fn labels_match_function_without_perturbation() {
        let g = Generator::new(5);
        for (p, g_label) in g.tuples(Function::F2, 300) {
            assert_eq!(Function::F2.classify(&p), g_label);
        }
    }

    #[test]
    fn perturbation_flips_some_labels() {
        // With 5% noise some tuples near the boundary must disagree with
        // their post-perturbation classification.
        let g = Generator::new(5).with_perturbation(0.05);
        let flipped = g
            .tuples(Function::F2, 1000)
            .iter()
            .filter(|(p, label)| Function::F2.classify(p) != *label)
            .count();
        assert!(flipped > 0, "expected some boundary flips");
        assert!(flipped < 200, "noise should stay moderate, got {flipped}");
    }

    #[test]
    fn f8_and_f10_are_skewed_f2_is_not() {
        let g = Generator::new(9);
        assert!(g.dataset(Function::F8, 1000).skew() > 0.85);
        assert!(g.dataset(Function::F10, 1000).skew() > 0.85);
        assert!(g.dataset(Function::F2, 1000).skew() < 0.85);
    }

    #[test]
    fn train_test_are_independent() {
        let g = Generator::new(13).with_perturbation(0.05);
        let (train, test) = g.train_test(Function::F3, 100, 100);
        assert_eq!(train.len(), 100);
        assert_eq!(test.len(), 100);
        assert_ne!(train.row_values(0), test.row_values(0));
    }

    #[test]
    fn salary_roughly_uniform() {
        let g = Generator::new(17);
        let ds = g.dataset(Function::F1, 2000);
        let mid = ds
            .num_column(AttrId::Salary.index())
            .iter()
            .filter(|&&s| s < 85_000.0)
            .count();
        // 85K is the midpoint of [20K,150K]; expect about half below.
        assert!((800..1200).contains(&mid), "got {mid}");
    }
}
