//! Deterministic row-sharding for batch passes.
//!
//! Batched dataset traversals split the rows into **fixed-size chunks**
//! (independent of how many worker threads run) and reduce the per-chunk
//! results in chunk-index order. Because each chunk is processed
//! sequentially and the reduction order is fixed, the result is
//! bit-identical no matter how many threads execute the chunks — seeds and
//! test thresholds do not move when the thread count changes.
//!
//! The chunk size is deliberately large enough that the paper-scale
//! training sets (1000 tuples) fit in a single chunk: single-chunk
//! evaluation is exactly the pre-batch sequential order.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Rows per chunk. Must stay constant across thread counts (it defines the
/// reduction grouping, and therefore the floating-point result).
pub(crate) const CHUNK_ROWS: usize = 1024;

/// Number of chunks a dataset of `rows` rows splits into.
pub(crate) fn n_chunks(rows: usize) -> usize {
    rows.div_ceil(CHUNK_ROWS)
}

/// Row range of chunk `c`.
fn chunk_range(c: usize, rows: usize) -> Range<usize> {
    let start = c * CHUNK_ROWS;
    start..rows.min(start + CHUNK_ROWS)
}

/// Resolves a requested thread count (`0` = auto) against the hardware and
/// the number of chunks available.
pub(crate) fn resolve_threads(requested: usize, chunks: usize) -> usize {
    let t = if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(8)
    } else {
        requested
    };
    t.clamp(1, chunks.max(1))
}

/// Maps `work` over the fixed row chunks of a dataset, each worker reusing
/// one `init()` scratch value, and returns the per-chunk results **in chunk
/// order** regardless of which thread computed which chunk.
///
/// `threads` is the resolved worker count (see [`resolve_threads`]); with
/// one worker (or one chunk) everything runs inline on the caller's thread.
pub(crate) fn map_chunks<S, T, G, F>(rows: usize, threads: usize, init: G, work: F) -> Vec<T>
where
    T: Send,
    G: Fn() -> S + Sync,
    F: Fn(&mut S, usize, Range<usize>) -> T + Sync,
{
    let chunks = n_chunks(rows);
    if chunks == 0 {
        return Vec::new();
    }
    if threads <= 1 || chunks == 1 {
        let mut scratch = init();
        return (0..chunks)
            .map(|c| work(&mut scratch, c, chunk_range(c, rows)))
            .collect();
    }

    // Work-stealing over an atomic chunk counter; each worker pushes
    // `(chunk_index, result)` pairs which are re-ordered afterwards, so
    // scheduling cannot influence the reduction order.
    let next = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(chunks));
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                let mut scratch = init();
                let mut local: Vec<(usize, T)> = Vec::new();
                loop {
                    let c = next.fetch_add(1, Ordering::Relaxed);
                    if c >= chunks {
                        break;
                    }
                    local.push((c, work(&mut scratch, c, chunk_range(c, rows))));
                }
                collected.lock().unwrap().extend(local);
            });
        }
    });
    let mut results = collected.into_inner().unwrap();
    results.sort_unstable_by_key(|&(c, _)| c);
    results.into_iter().map(|(_, t)| t).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_ranges_cover_rows_exactly() {
        for &rows in &[0usize, 1, CHUNK_ROWS - 1, CHUNK_ROWS, CHUNK_ROWS + 1, 5000] {
            let chunks = n_chunks(rows);
            let mut covered = 0;
            for c in 0..chunks {
                let r = chunk_range(c, rows);
                assert_eq!(r.start, covered);
                covered = r.end;
            }
            assert_eq!(covered, rows);
        }
    }

    #[test]
    fn resolve_threads_clamps() {
        assert_eq!(resolve_threads(4, 2), 2);
        assert_eq!(resolve_threads(1, 100), 1);
        assert!(resolve_threads(0, 100) >= 1);
        assert_eq!(resolve_threads(3, 0), 1);
    }

    #[test]
    fn results_come_back_in_chunk_order() {
        let rows = CHUNK_ROWS * 5 + 17;
        for threads in [1, 2, 8] {
            let got = map_chunks(rows, threads, || (), |(), c, range| (c, range.len()));
            let indices: Vec<usize> = got.iter().map(|&(c, _)| c).collect();
            assert_eq!(indices, (0..n_chunks(rows)).collect::<Vec<_>>());
            let total: usize = got.iter().map(|&(_, len)| len).sum();
            assert_eq!(total, rows);
        }
    }
}
