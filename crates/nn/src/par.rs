//! Deterministic row-sharding for batch passes on a shared worker pool.
//!
//! Batched dataset traversals split the rows into **fixed-size chunks**
//! (independent of how many worker threads run) and reduce the per-chunk
//! results in chunk-index order. Because each chunk is processed
//! sequentially and the reduction order is fixed, the result is
//! bit-identical no matter how many threads execute the chunks — seeds and
//! test thresholds do not move when the thread count changes.
//!
//! The chunk size is deliberately large enough that the paper-scale
//! training sets (1000 tuples) fit in a single chunk: single-chunk
//! evaluation is exactly the pre-batch sequential order.
//!
//! Chunks execute on **one lazily-initialized, process-wide worker pool**
//! instead of `thread::scope` workers spawned per call: BFGS training
//! evaluates the objective hundreds of times per fit and pruning retrains
//! repeatedly, so per-call thread spawning was measurable overhead
//! (ROADMAP, PR 2 follow-up). Jobs are `'static` closures over `Arc`-shared
//! batch buffers ([`nr_encode::EncodedDataset::shared`]); each caller
//! collects its own results over a private channel, so concurrent callers
//! interleave safely on the same pool.

use std::ops::Range;
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Rows per chunk. Must stay constant across thread counts (it defines the
/// reduction grouping, and therefore the floating-point result).
pub(crate) const CHUNK_ROWS: usize = 1024;

/// Number of chunks a dataset of `rows` rows splits into.
pub(crate) fn n_chunks(rows: usize) -> usize {
    rows.div_ceil(CHUNK_ROWS)
}

/// Row range of chunk `c`.
pub(crate) fn chunk_range(c: usize, rows: usize) -> Range<usize> {
    let start = c * CHUNK_ROWS;
    start..rows.min(start + CHUNK_ROWS)
}

/// Resolves a requested thread count (`0` = auto) against the hardware and
/// the number of chunks available. A result of `1` means "run inline on
/// the caller's thread"; anything larger means "submit to the shared pool".
///
/// Public so pool clients (the serving engine's chunk-parallel scorer)
/// can pre-resolve and skip per-chunk buffer setup entirely when the
/// answer is "inline anyway" — e.g. auto mode on a single-core host.
pub fn resolve_threads(requested: usize, chunks: usize) -> usize {
    let t = if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(8)
    } else {
        requested
    };
    t.clamp(1, chunks.max(1))
}

thread_local! {
    /// Per-thread cache of reusable f64 buffers (see [`with_scratch`]).
    static SCRATCH: std::cell::RefCell<Vec<Vec<f64>>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Runs `f` with `sizes.len()` zeroed `f64` buffers borrowed from a
/// thread-local cache, so chunk jobs reuse scratch across chunks and
/// across calls instead of heap-allocating per chunk — on pool workers and
/// on the inline single-threaded path alike.
pub(crate) fn with_scratch<R>(sizes: &[usize], f: impl FnOnce(&mut [Vec<f64>]) -> R) -> R {
    let mut bufs: Vec<Vec<f64>> = SCRATCH.with(|c| {
        let mut cache = c.borrow_mut();
        sizes
            .iter()
            .map(|&s| {
                let mut b = cache.pop().unwrap_or_default();
                b.clear();
                b.resize(s, 0.0);
                b
            })
            .collect()
    });
    let result = f(&mut bufs);
    SCRATCH.with(|c| {
        let mut cache = c.borrow_mut();
        // Bounded cache: a few chunk-sized buffers per thread, no more.
        for b in bufs {
            if cache.len() < 8 {
                cache.push(b);
            }
        }
    });
    result
}

/// A unit of work shipped to the pool.
type Job = Box<dyn FnOnce() + Send + 'static>;

thread_local! {
    /// Location of the most recent panic on this thread, recorded by the
    /// hook below. Read by the job wrapper in [`map_indexed`] right after
    /// it catches an unwind, so the re-raised panic can name the original
    /// file:line instead of the collection point.
    static LAST_PANIC_LOCATION: std::cell::RefCell<Option<String>> =
        const { std::cell::RefCell::new(None) };
}

static LOCATION_HOOK: std::sync::Once = std::sync::Once::new();

/// Installs (once, process-wide) a panic hook that records the panic
/// location in a thread-local before delegating to the previous hook.
/// Captured pool-job panics read it back; panics elsewhere are unaffected.
fn install_location_hook() {
    LOCATION_HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let loc = info.location().map(|l| l.to_string());
            LAST_PANIC_LOCATION.with(|slot| *slot.borrow_mut() = loc);
            prev(info);
        }));
    });
}

/// Renders a caught panic payload back into the original message: the two
/// payload types `panic!` produces (`&str` and `String`), with a fallback
/// for exotic `panic_any` payloads.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

struct Pool {
    sender: Sender<Job>,
}

static POOL: OnceLock<Pool> = OnceLock::new();

/// The process-wide worker pool, spawned on first use. Worker count is
/// fixed at `min(available_parallelism, 8)`; determinism never depends on
/// it (see module docs).
fn pool() -> &'static Pool {
    POOL.get_or_init(|| {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .clamp(1, 8);
        let (sender, receiver) = channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        for k in 0..workers {
            let receiver = Arc::clone(&receiver);
            std::thread::Builder::new()
                .name(format!("nr-nn-pool-{k}"))
                .spawn(move || loop {
                    // Hold the lock only while receiving, not while working.
                    let job = receiver.lock().unwrap().recv();
                    match job {
                        // A panicking job must not kill the worker. Jobs
                        // submitted via `map_indexed` catch their own
                        // unwinds and ship the payload back to the caller;
                        // this outer catch is only the backstop for panics
                        // outside that wrapper (e.g. a poisoned result
                        // channel).
                        Ok(job) => {
                            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                        }
                        Err(_) => break, // pool sender dropped: process exit
                    }
                })
                .expect("spawn pool worker");
        }
        Pool { sender }
    })
}

/// Maps `work` over the fixed row chunks of a dataset and returns the
/// per-chunk results **in chunk order** regardless of which pool thread
/// computed which chunk.
///
/// `threads` is the resolved worker count (see [`resolve_threads`]); with
/// one worker (or one chunk) everything runs inline on the caller's
/// thread — the single-threaded path never touches the pool. `work` must
/// be `'static`: capture dataset buffers via
/// [`nr_encode::EncodedDataset::shared`] and weights by value.
pub(crate) fn map_chunks<T, F>(rows: usize, threads: usize, work: F) -> Vec<T>
where
    T: Send + 'static,
    F: Fn(usize, Range<usize>) -> T + Send + Sync + 'static,
{
    map_indexed(n_chunks(rows), threads, move |c| {
        work(c, chunk_range(c, rows))
    })
}

/// Maps `work` over the job indices `0..jobs` on the shared worker pool
/// and returns the results **in index order** regardless of which pool
/// thread computed which job. The generalization behind [`map_chunks`];
/// multi-candidate evaluations (pruning's parallel accuracy gates) submit
/// `candidates × chunks` jobs through this.
///
/// With one resolved worker (or one job) everything runs inline on the
/// caller's thread — the single-threaded path never touches the pool.
pub(crate) fn map_indexed<T, F>(jobs: usize, threads: usize, work: F) -> Vec<T>
where
    T: Send + 'static,
    F: Fn(usize) -> T + Send + Sync + 'static,
{
    map_indexed_scoped(jobs, threads, work)
}

/// Counts outstanding scoped jobs. [`WaitGroup::wait`] blocks until every
/// job registered with [`WaitGroup::add`] has called [`WaitGroup::done`] —
/// and jobs call `done` only *after* dropping their captured closure state,
/// which is the whole point (see [`map_indexed_scoped`]).
struct WaitGroup {
    pending: Mutex<usize>,
    all_done: Condvar,
}

impl WaitGroup {
    fn new() -> Self {
        WaitGroup {
            pending: Mutex::new(0),
            all_done: Condvar::new(),
        }
    }

    fn add(&self) {
        *self.pending.lock().unwrap() += 1;
    }

    fn done(&self) {
        let mut pending = self.pending.lock().unwrap();
        *pending -= 1;
        if *pending == 0 {
            self.all_done.notify_all();
        }
    }

    fn wait(&self) {
        let mut pending = self.pending.lock().unwrap();
        while *pending != 0 {
            pending = self.all_done.wait(pending).unwrap();
        }
    }
}

/// Waits for the scoped jobs on drop, so the borrow-validity guarantee
/// holds on the unwind path (a panic re-raised at the collection point)
/// exactly as on the normal return path.
struct WaitOnDrop<'a>(&'a WaitGroup);

impl Drop for WaitOnDrop<'_> {
    fn drop(&mut self) {
        self.0.wait();
    }
}

/// Everything a scoped job touches that may borrow from the caller's
/// frame. [`run_scoped_payload`] consumes it by value, so by the time the
/// job signals its [`WaitGroup`] these are guaranteed dropped.
struct ScopedPayload<T, F> {
    work: Arc<F>,
    tx: Sender<(usize, Result<T, String>)>,
    j: usize,
}

fn run_scoped_payload<T, F>(payload: ScopedPayload<T, F>)
where
    T: Send,
    F: Fn(usize) -> T + Send + Sync,
{
    let ScopedPayload { work, tx, j } = payload;
    // Catch the job's own unwind so the panic payload (and the location
    // the hook recorded) travel back to the caller instead of dying on
    // the pool thread.
    let result =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| work(j))).map_err(|payload| {
            let msg = panic_message(payload.as_ref());
            match LAST_PANIC_LOCATION.with(|slot| slot.borrow_mut().take()) {
                Some(loc) => format!("{msg}, at {loc}"),
                None => msg,
            }
        });
    // The caller may have bailed (panic elsewhere); a closed channel is
    // fine.
    let _ = tx.send((j, result));
    // `work` and `tx` drop here — strictly before the job's wait-group
    // signal in `map_indexed_scoped`'s wrapper.
}

/// Pretends a scoped job outlives the caller's frame so it can ride the
/// `'static` pool queue.
///
/// # Safety contract
///
/// The caller must not return or unwind past the borrowed data until the
/// erased closure has run **and dropped its captures**.
/// [`map_indexed_scoped`] upholds this with a [`WaitGroup`] that every
/// submitted job signals only after consuming its [`ScopedPayload`], plus
/// a [`WaitOnDrop`] guard covering the unwind path; pool workers always
/// run every queued job (the queue outlives the process's last caller),
/// so the signal cannot be skipped.
// The workspace denies `unsafe_code`; this lifetime erasure is the one
// exception in the crate, kept to a single expression behind the wait
// contract above.
#[allow(unsafe_code)]
fn erase_job_lifetime<'env>(
    job: Box<dyn FnOnce() + Send + 'env>,
) -> Box<dyn FnOnce() + Send + 'static> {
    // SAFETY: only the lifetime bound changes; Box<dyn FnOnce> has the
    // same layout for any lifetime, and the wait contract above keeps the
    // borrows alive until the job is done with them.
    unsafe { std::mem::transmute(job) }
}

/// [`map_indexed`] for *borrowing* closures: maps `work` over the job
/// indices `0..jobs` on the shared worker pool and returns the results in
/// index order, without requiring `'static` captures — `work` may borrow
/// the caller's locals (a [`nr_tabular::DatasetView`], a model reference)
/// directly, like `std::thread::scope`, but on the process-wide pool
/// instead of freshly spawned threads.
///
/// `threads` is a requested worker count (`0` = auto: available
/// parallelism capped at the pool size). With one resolved worker (or one
/// job) everything runs inline on the caller's thread. A panicking job
/// re-raises deterministically (lowest index first) at the collection
/// point, after every other submitted job has finished.
pub fn map_indexed_scoped<'env, T, F>(jobs: usize, threads: usize, work: F) -> Vec<T>
where
    T: Send + 'env,
    F: Fn(usize) -> T + Send + Sync + 'env,
{
    if jobs == 0 {
        return Vec::new();
    }
    if resolve_threads(threads, jobs) <= 1 || jobs == 1 {
        return (0..jobs).map(work).collect();
    }

    install_location_hook();
    let work = Arc::new(work);
    let wg = Arc::new(WaitGroup::new());
    // Declared before `tx`/`rx` so it drops after them: by the time the
    // guard waits, the results channel is closed and only capture drops
    // remain outstanding.
    let _jobs_finished = WaitOnDrop(&wg);
    let (tx, rx) = channel::<(usize, Result<T, String>)>();
    for j in 0..jobs {
        let payload = ScopedPayload {
            work: Arc::clone(&work),
            tx: tx.clone(),
            j,
        };
        let done = Arc::clone(&wg);
        // Registered before submission, one by one, so the guard waits for
        // exactly the jobs that were actually queued even if this loop
        // unwinds midway.
        wg.add();
        let job: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            run_scoped_payload(payload);
            // Signals strictly after the payload (the only captures that
            // may borrow the caller's frame) has been consumed and
            // dropped; `done` itself is a 'static Arc.
            done.done();
        });
        pool()
            .sender
            .send(erase_job_lifetime(job))
            .expect("worker pool alive for the process lifetime");
    }
    drop(tx);
    let mut results: Vec<(usize, Result<T, String>)> = rx.iter().collect();
    assert_eq!(
        results.len(),
        jobs,
        "worker pool dropped {} of {jobs} job results",
        jobs - results.len()
    );
    results.sort_unstable_by_key(|&(j, _)| j);
    // Re-raise the first (lowest-index, so deterministic) job panic with
    // its original message and location.
    results
        .into_iter()
        .map(|(j, r)| r.unwrap_or_else(|msg| panic!("worker-pool job {j} panicked: {msg}")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_ranges_cover_rows_exactly() {
        for &rows in &[0usize, 1, CHUNK_ROWS - 1, CHUNK_ROWS, CHUNK_ROWS + 1, 5000] {
            let chunks = n_chunks(rows);
            let mut covered = 0;
            for c in 0..chunks {
                let r = chunk_range(c, rows);
                assert_eq!(r.start, covered);
                covered = r.end;
            }
            assert_eq!(covered, rows);
        }
    }

    #[test]
    fn resolve_threads_clamps() {
        assert_eq!(resolve_threads(4, 2), 2);
        assert_eq!(resolve_threads(1, 100), 1);
        assert!(resolve_threads(0, 100) >= 1);
        assert_eq!(resolve_threads(3, 0), 1);
    }

    #[test]
    fn results_come_back_in_chunk_order() {
        let rows = CHUNK_ROWS * 5 + 17;
        for threads in [1, 2, 8] {
            let got = map_chunks(rows, threads, |c, range| (c, range.len()));
            let indices: Vec<usize> = got.iter().map(|&(c, _)| c).collect();
            assert_eq!(indices, (0..n_chunks(rows)).collect::<Vec<_>>());
            let total: usize = got.iter().map(|&(_, len)| len).sum();
            assert_eq!(total, rows);
        }
    }

    #[test]
    fn indexed_results_come_back_in_order() {
        for threads in [1, 2, 8] {
            let got = map_indexed(23, threads, |j| j * j);
            assert_eq!(got, (0..23).map(|j| j * j).collect::<Vec<_>>());
        }
        assert_eq!(map_indexed(0, 4, |j| j), Vec::<usize>::new());
        assert_eq!(map_indexed(1, 4, |j| j), vec![0]);
    }

    #[test]
    fn pool_is_reused_across_calls() {
        // Many pooled calls must not accumulate threads: every call after
        // the first reuses the same workers (this is the regression guard
        // for the per-call `thread::scope` spawning this pool replaced).
        for _ in 0..20 {
            let got = map_chunks(CHUNK_ROWS * 3, 4, |c, _| c);
            assert_eq!(got, vec![0, 1, 2]);
        }
        let pool_threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(8);
        // Indirect check: submitting far more jobs than workers completes.
        let got = map_chunks(CHUNK_ROWS * (pool_threads * 4), 8, |c, _| c);
        assert_eq!(got.len(), pool_threads * 4);
    }

    #[test]
    fn pooled_job_panic_reports_its_own_message() {
        // A panicking job must surface its original message (and job
        // index) at the collection point, not an opaque results-length
        // assert.
        let err = std::panic::catch_unwind(|| {
            map_indexed(8, 4, |j| {
                if j == 5 {
                    panic!("job five exploded deliberately");
                }
                j
            })
        })
        .expect_err("the pooled panic must propagate to the caller");
        let msg = panic_message(err.as_ref());
        assert!(
            msg.contains("job five exploded deliberately"),
            "original message lost: {msg}"
        );
        assert!(msg.contains("worker-pool job 5"), "job index lost: {msg}");
        assert!(msg.contains("par.rs"), "panic location lost: {msg}");
        // The pool survives a panicking job: later calls still work.
        assert_eq!(map_indexed(3, 4, |j| j), vec![0, 1, 2]);
    }

    #[test]
    fn earliest_job_panic_wins_deterministically() {
        for _ in 0..5 {
            let err = std::panic::catch_unwind(|| {
                map_indexed(8, 4, |j| {
                    if j >= 4 {
                        panic!("job {j} failed");
                    }
                    j
                })
            })
            .expect_err("must propagate");
            let msg = panic_message(err.as_ref());
            assert!(
                msg.contains("worker-pool job 4") && msg.contains("job 4 failed"),
                "expected the lowest-index panic, got: {msg}"
            );
        }
    }

    #[test]
    fn scoped_jobs_borrow_the_callers_frame() {
        // The whole point of `map_indexed_scoped`: non-'static captures.
        let data: Vec<u64> = (0..10_000).collect();
        let slice = &data[..];
        for threads in [1, 2, 8] {
            let sums = map_indexed_scoped(7, threads, |j| {
                slice[j * 1000..(j + 1) * 1000].iter().sum::<u64>()
            });
            let want: Vec<u64> = (0..7)
                .map(|j| slice[j * 1000..(j + 1) * 1000].iter().sum())
                .collect();
            assert_eq!(sums, want);
        }
    }

    #[test]
    fn scoped_panic_still_waits_for_the_other_jobs() {
        // A panicking scoped job must re-raise only after every sibling
        // finished touching the borrowed frame (the guard's unwind path).
        let data = vec![1u32; 64];
        let err = std::panic::catch_unwind(|| {
            let slice = &data[..];
            map_indexed_scoped(8, 4, |j| {
                if j == 2 {
                    panic!("scoped job two exploded");
                }
                slice.iter().sum::<u32>()
            })
        })
        .expect_err("the scoped panic must propagate");
        let msg = panic_message(err.as_ref());
        assert!(msg.contains("scoped job two exploded"), "{msg}");
        assert!(msg.contains("worker-pool job 2"), "{msg}");
        // The pool and the scoped path both survive.
        assert_eq!(map_indexed_scoped(3, 4, |j| j), vec![0, 1, 2]);
    }

    #[test]
    fn concurrent_callers_do_not_cross_wires() {
        // Two threads hammer the shared pool simultaneously; each must get
        // exactly its own chunk results.
        let handles: Vec<_> = (0..4)
            .map(|k| {
                std::thread::spawn(move || {
                    for _ in 0..10 {
                        let got = map_chunks(CHUNK_ROWS * 4, 4, move |c, _| (k, c));
                        assert_eq!(got, (0..4).map(|c| (k, c)).collect::<Vec<_>>());
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
}
