//! The training objective: cross entropy (eq. 2) + penalty (eq. 3).

use nr_encode::EncodedDataset;
use nr_opt::Objective;
use serde::{Deserialize, Serialize};

use crate::{Activation, Matrix, Mlp};

/// Output clamp keeping `log` finite; the gradient is exact regardless
/// because `dE/du = S − t` does not go through the clamp.
const EPS: f64 = 1e-12;

/// The two-term weight-decay penalty of eq. 3:
///
/// `P(w,v) = ε₁ Σ βθ²/(1+βθ²) + ε₂ Σ θ²` over all active weights θ.
///
/// The first term saturates — it pushes *small* weights to zero without
/// penalizing large ones much (so pruning finds many removable links); the
/// second keeps all weights bounded. The defaults are Setiono's published
/// settings.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Penalty {
    /// Weight of the saturating term.
    pub eps1: f64,
    /// Weight of the quadratic term.
    pub eps2: f64,
    /// Steepness of the saturating term.
    pub beta: f64,
}

impl Default for Penalty {
    fn default() -> Self {
        Penalty {
            eps1: 0.1,
            eps2: 1e-4,
            beta: 10.0,
        }
    }
}

impl Penalty {
    /// A zero penalty (pure cross-entropy training; ablation baseline).
    pub fn none() -> Self {
        Penalty {
            eps1: 0.0,
            eps2: 0.0,
            beta: 10.0,
        }
    }

    /// Penalty value for one weight.
    #[inline]
    pub fn value(&self, theta: f64) -> f64 {
        let t2 = theta * theta;
        self.eps1 * self.beta * t2 / (1.0 + self.beta * t2) + self.eps2 * t2
    }

    /// Derivative of [`Penalty::value`] w.r.t. the weight.
    #[inline]
    pub fn derivative(&self, theta: f64) -> f64 {
        let denom = 1.0 + self.beta * theta * theta;
        self.eps1 * 2.0 * self.beta * theta / (denom * denom) + 2.0 * self.eps2 * theta
    }
}

/// Eq. 2 + eq. 3 over the network's *active* weights, as an
/// [`nr_opt::Objective`].
///
/// The parameter vector is the canonical active-link flattening of the
/// template network ([`Mlp::flatten_active`]); masked links are simply not
/// part of the optimization problem, which keeps BFGS's dense inverse
/// Hessian small as pruning progresses.
pub struct CrossEntropyObjective<'a> {
    template: &'a Mlp,
    data: &'a EncodedDataset,
    penalty: Penalty,
    /// Canonical order of the active links, cached.
    links: Vec<crate::LinkId>,
}

impl<'a> CrossEntropyObjective<'a> {
    /// Builds the objective for a network structure and dataset.
    pub fn new(template: &'a Mlp, data: &'a EncodedDataset, penalty: Penalty) -> Self {
        assert_eq!(
            template.n_inputs(),
            data.cols(),
            "network inputs must match encoded data columns"
        );
        assert!(
            template.n_outputs() >= data.n_classes(),
            "need one output node per class"
        );
        let links = template.active_links();
        CrossEntropyObjective {
            template,
            data,
            penalty,
            links,
        }
    }

    /// Expands the flat parameter vector into dense `w`/`v` matrices
    /// (masked entries zero).
    fn assemble(&self, x: &[f64]) -> (Matrix, Matrix) {
        let t = self.template;
        let mut w = Matrix::zeros(t.n_hidden(), t.n_inputs());
        let mut v = Matrix::zeros(t.n_outputs(), t.n_hidden());
        for (link, &p) in self.links.iter().zip(x) {
            match *link {
                crate::LinkId::InputHidden { hidden, input } => w[(hidden, input)] = p,
                crate::LinkId::HiddenOutput { output, hidden } => v[(output, hidden)] = p,
            }
        }
        (w, v)
    }

    /// Shared forward/backward pass. When `grad` is `Some`, accumulates the
    /// gradient (in link order) as well.
    fn evaluate(&self, x: &[f64], mut grad: Option<&mut [f64]>) -> f64 {
        let t = self.template;
        let (w, v) = self.assemble(x);
        let (h, o) = (t.n_hidden(), t.n_outputs());

        let mut dw = Matrix::zeros(h, t.n_inputs());
        let mut dv = Matrix::zeros(o, h);
        let mut hidden = vec![0.0; h];
        let mut out = vec![0.0; o];
        let mut delta_out = vec![0.0; o];
        let mut loss = 0.0;

        for i in 0..self.data.rows() {
            let xrow = self.data.input(i);
            // Forward.
            for (m, hm) in hidden.iter_mut().enumerate() {
                let row = w.row(m);
                let mut z = 0.0;
                for (wi, xi) in row.iter().zip(xrow) {
                    z += wi * xi;
                }
                *hm = Activation::Tanh.apply(z);
            }
            for (p, op) in out.iter_mut().enumerate() {
                let row = v.row(p);
                let mut u = 0.0;
                for (vi, ai) in row.iter().zip(&hidden) {
                    u += vi * ai;
                }
                *op = Activation::Sigmoid.apply(u);
            }
            // Cross entropy against the one-hot target.
            let target = self.data.target(i);
            for (p, (&s, d)) in out.iter().zip(delta_out.iter_mut()).enumerate() {
                let tph = if p == target { 1.0 } else { 0.0 };
                let sc = s.clamp(EPS, 1.0 - EPS);
                loss -= tph * sc.ln() + (1.0 - tph) * (1.0 - sc).ln();
                *d = s - tph; // dE/du_p for sigmoid + CE
            }
            if grad.is_some() {
                // Backward: dE/dv[p][m] += δp·αm ; δm = (1−α²)·Σp δp v[p][m].
                for (p, &d) in delta_out.iter().enumerate() {
                    let row = dv.row_mut(p);
                    for (slot, ai) in row.iter_mut().zip(&hidden) {
                        *slot += d * ai;
                    }
                }
                for m in 0..h {
                    let mut back = 0.0;
                    for p in 0..o {
                        back += delta_out[p] * v[(p, m)];
                    }
                    let dz = Activation::Tanh.derivative_from_output(hidden[m]) * back;
                    if dz != 0.0 {
                        let row = dw.row_mut(m);
                        for (slot, xi) in row.iter_mut().zip(xrow) {
                            // Inputs are mostly 0/1; skip the zeros.
                            if *xi != 0.0 {
                                *slot += dz * xi;
                            }
                        }
                    }
                }
            }
        }

        // Penalty over active weights (+ gradient).
        for (k, (&p, link)) in x.iter().zip(&self.links).enumerate() {
            loss += self.penalty.value(p);
            if let Some(g) = grad.as_deref_mut() {
                let data_grad = match *link {
                    crate::LinkId::InputHidden { hidden, input } => dw[(hidden, input)],
                    crate::LinkId::HiddenOutput { output, hidden } => dv[(output, hidden)],
                };
                g[k] = data_grad + self.penalty.derivative(p);
            }
        }
        loss
    }
}

impl Objective for CrossEntropyObjective<'_> {
    fn dim(&self) -> usize {
        self.links.len()
    }

    fn value(&self, x: &[f64]) -> f64 {
        self.evaluate(x, None)
    }

    fn gradient(&self, x: &[f64], grad: &mut [f64]) {
        self.evaluate(x, Some(grad));
    }

    fn value_and_gradient(&self, x: &[f64], grad: &mut [f64]) -> f64 {
        self.evaluate(x, Some(grad))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LinkId;
    use nr_opt::numeric_gradient;

    fn toy_data() -> EncodedDataset {
        // 3 inputs (last = bias), 4 rows, 2 classes.
        EncodedDataset::from_parts(
            vec![
                1.0, 0.0, 1.0, //
                0.0, 1.0, 1.0, //
                1.0, 1.0, 1.0, //
                0.0, 0.0, 1.0,
            ],
            3,
            vec![0, 1, 0, 1],
            2,
        )
    }

    #[test]
    fn penalty_value_and_derivative() {
        let p = Penalty::default();
        assert_eq!(p.value(0.0), 0.0);
        assert_eq!(p.derivative(0.0), 0.0);
        // Saturating term tends to eps1 for large weights.
        assert!((p.value(100.0) - (0.1 + 1e-4 * 10_000.0)).abs() < 1e-3);
        // Finite difference check.
        for &t in &[-2.0, -0.3, 0.1, 1.5] {
            let h = 1e-7;
            let numeric = (p.value(t + h) - p.value(t - h)) / (2.0 * h);
            assert!((numeric - p.derivative(t)).abs() < 1e-6);
        }
    }

    #[test]
    fn penalty_none_is_zero() {
        let p = Penalty::none();
        assert_eq!(p.value(3.0), 0.0);
        assert_eq!(p.derivative(3.0), 0.0);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let net = Mlp::random(3, 3, 2, 11);
        let data = toy_data();
        let obj = CrossEntropyObjective::new(&net, &data, Penalty::default());
        let x = net.flatten_active();
        let mut analytic = vec![0.0; obj.dim()];
        obj.gradient(&x, &mut analytic);
        let numeric = numeric_gradient(&obj, &x, 1e-6);
        for (k, (a, n)) in analytic.iter().zip(&numeric).enumerate() {
            assert!(
                (a - n).abs() < 1e-5 * (1.0 + a.abs()),
                "coordinate {k}: analytic {a} vs numeric {n}"
            );
        }
    }

    #[test]
    fn gradient_matches_with_pruned_links() {
        let mut net = Mlp::random(3, 3, 2, 13);
        net.prune(LinkId::InputHidden {
            hidden: 0,
            input: 1,
        });
        net.prune(LinkId::HiddenOutput {
            output: 1,
            hidden: 2,
        });
        let data = toy_data();
        let obj = CrossEntropyObjective::new(&net, &data, Penalty::default());
        assert_eq!(obj.dim(), net.n_active());
        let x = net.flatten_active();
        let mut analytic = vec![0.0; obj.dim()];
        obj.gradient(&x, &mut analytic);
        let numeric = numeric_gradient(&obj, &x, 1e-6);
        for (a, n) in analytic.iter().zip(&numeric) {
            assert!((a - n).abs() < 1e-5 * (1.0 + a.abs()), "{a} vs {n}");
        }
    }

    #[test]
    fn value_and_gradient_consistent() {
        let net = Mlp::random(3, 2, 2, 17);
        let data = toy_data();
        let obj = CrossEntropyObjective::new(&net, &data, Penalty::default());
        let x = net.flatten_active();
        let mut g = vec![0.0; obj.dim()];
        let v1 = obj.value(&x);
        let v2 = obj.value_and_gradient(&x, &mut g);
        assert!((v1 - v2).abs() < 1e-12);
    }

    #[test]
    fn loss_decreases_along_negative_gradient() {
        let net = Mlp::random(3, 2, 2, 19);
        let data = toy_data();
        let obj = CrossEntropyObjective::new(&net, &data, Penalty::default());
        let x = net.flatten_active();
        let mut g = vec![0.0; obj.dim()];
        let f0 = obj.value_and_gradient(&x, &mut g);
        let step: Vec<f64> = x.iter().zip(&g).map(|(xi, gi)| xi - 1e-3 * gi).collect();
        assert!(obj.value(&step) < f0);
    }

    #[test]
    fn perfect_outputs_give_near_zero_loss() {
        // One input+bias, strong weights: class 0 for x=1 after training by hand.
        let mut net = Mlp::random(2, 1, 2, 23);
        net.set_weight(
            LinkId::InputHidden {
                hidden: 0,
                input: 0,
            },
            50.0,
        );
        net.set_weight(
            LinkId::InputHidden {
                hidden: 0,
                input: 1,
            },
            -25.0,
        );
        net.set_weight(
            LinkId::HiddenOutput {
                output: 0,
                hidden: 0,
            },
            50.0,
        );
        net.set_weight(
            LinkId::HiddenOutput {
                output: 1,
                hidden: 0,
            },
            -50.0,
        );
        let data = EncodedDataset::from_parts(vec![1.0, 1.0, 0.0, 1.0], 2, vec![0, 1], 2);
        let obj = CrossEntropyObjective::new(&net, &data, Penalty::none());
        let loss = obj.value(&net.flatten_active());
        assert!(loss < 1e-8, "loss {loss}");
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn rejects_mismatched_data() {
        let net = Mlp::random(3, 2, 2, 1);
        let data = EncodedDataset::from_parts(vec![1.0, 1.0], 2, vec![0], 2);
        let _ = CrossEntropyObjective::new(&net, &data, Penalty::default());
    }
}
