//! The training objective: cross entropy (eq. 2) + penalty (eq. 3).

use nr_encode::EncodedDataset;
use nr_opt::Objective;
use serde::{Deserialize, Serialize};

use crate::{Activation, Matrix, Mlp};

/// Output clamp keeping `log` finite; the gradient is exact regardless
/// because `dE/du = S − t` does not go through the clamp.
const EPS: f64 = 1e-12;

/// The two-term weight-decay penalty of eq. 3:
///
/// `P(w,v) = ε₁ Σ βθ²/(1+βθ²) + ε₂ Σ θ²` over all active weights θ.
///
/// The first term saturates — it pushes *small* weights to zero without
/// penalizing large ones much (so pruning finds many removable links); the
/// second keeps all weights bounded. The defaults are Setiono's published
/// settings.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Penalty {
    /// Weight of the saturating term.
    pub eps1: f64,
    /// Weight of the quadratic term.
    pub eps2: f64,
    /// Steepness of the saturating term.
    pub beta: f64,
}

impl Default for Penalty {
    fn default() -> Self {
        Penalty {
            eps1: 0.1,
            eps2: 1e-4,
            beta: 10.0,
        }
    }
}

impl Penalty {
    /// A zero penalty (pure cross-entropy training; ablation baseline).
    pub fn none() -> Self {
        Penalty {
            eps1: 0.0,
            eps2: 0.0,
            beta: 10.0,
        }
    }

    /// Penalty value for one weight.
    #[inline]
    pub fn value(&self, theta: f64) -> f64 {
        let t2 = theta * theta;
        self.eps1 * self.beta * t2 / (1.0 + self.beta * t2) + self.eps2 * t2
    }

    /// Derivative of [`Penalty::value`] w.r.t. the weight.
    #[inline]
    pub fn derivative(&self, theta: f64) -> f64 {
        let denom = 1.0 + self.beta * theta * theta;
        self.eps1 * 2.0 * self.beta * theta / (denom * denom) + 2.0 * self.eps2 * theta
    }
}

/// Eq. 2 + eq. 3 over the network's *active* weights, as an
/// [`nr_opt::Objective`].
///
/// The parameter vector is the canonical active-link flattening of the
/// template network ([`Mlp::flatten_active`]); masked links are simply not
/// part of the optimization problem, which keeps BFGS's dense inverse
/// Hessian small as pruning progresses.
///
/// Evaluation runs on the dataset's dense batch layout
/// ([`nr_encode::EncodedDataset::batch`]): the forward pass is two
/// matrix-matrix products (`hidden = tanh(X·Wᵀ)`, `S = σ(hidden·Vᵀ)`) and
/// the backward pass is the transposed products `dV = Dᵀ·hidden` and
/// `dW = ((D·V) ⊙ (1−hidden²))ᵀ·X` with `D = S − T`. Rows are sharded
/// into fixed-size chunks evaluated by worker threads and reduced in chunk
/// order, so the value and gradient are bit-identical for every thread
/// count (see [`CrossEntropyObjective::with_threads`]).
pub struct CrossEntropyObjective<'a> {
    template: &'a Mlp,
    data: &'a EncodedDataset,
    penalty: Penalty,
    /// Canonical order of the active links, cached.
    links: Vec<crate::LinkId>,
    /// Data-pass execution mode: `1` = inline on the caller's thread,
    /// anything else = the shared worker pool (`0` = auto-detect).
    threads: usize,
}

impl<'a> CrossEntropyObjective<'a> {
    /// Builds the objective for a network structure and dataset.
    pub fn new(template: &'a Mlp, data: &'a EncodedDataset, penalty: Penalty) -> Self {
        assert_eq!(
            template.n_inputs(),
            data.cols(),
            "network inputs must match encoded data columns"
        );
        assert!(
            template.n_outputs() >= data.n_classes(),
            "need one output node per class"
        );
        let links = template.active_links();
        CrossEntropyObjective {
            template,
            data,
            penalty,
            links,
            threads: 0,
        }
    }

    /// Selects the data-pass execution mode: `1` forces inline evaluation
    /// on the caller's thread; any other value (`0` = auto-detect) runs
    /// multi-chunk datasets on the **shared worker pool**, whose size is
    /// fixed process-wide at `min(available_parallelism, 8)` — the value
    /// is not a per-call worker count.
    ///
    /// Purely a throughput knob either way: the fixed chunking and ordered
    /// reduction make the result bit-identical in every mode.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Expands the flat parameter vector into dense `w`/`v` matrices
    /// (masked entries zero).
    fn assemble(&self, x: &[f64]) -> (Matrix, Matrix) {
        let t = self.template;
        let mut w = Matrix::zeros(t.n_hidden(), t.n_inputs());
        let mut v = Matrix::zeros(t.n_outputs(), t.n_hidden());
        for (link, &p) in self.links.iter().zip(x) {
            match *link {
                crate::LinkId::InputHidden { hidden, input } => w[(hidden, input)] = p,
                crate::LinkId::HiddenOutput { output, hidden } => v[(output, hidden)] = p,
            }
        }
        (w, v)
    }

    /// Shared forward/backward pass. When `grad` is `Some`, accumulates the
    /// gradient (in link order) as well.
    ///
    /// One fixed-size chunk of rows at a time: batch forward
    /// (`hidden = tanh(X·Wᵀ)`, `S = σ(hidden·Vᵀ)`), cross entropy against
    /// the precomputed one-hot targets, and the delta rules as transposed
    /// matmuls. Chunks run on worker threads; per-chunk partial losses and
    /// gradients are reduced in chunk order, so the result does not depend
    /// on the thread count.
    fn evaluate(&self, x: &[f64], mut grad: Option<&mut [f64]>) -> f64 {
        let t = self.template;
        let (w, v) = self.assemble(x);
        let (h, o, n_in) = (t.n_hidden(), t.n_outputs(), t.n_inputs());
        let rows = self.data.rows();
        let want_grad = grad.is_some();

        // Everything a chunk job needs, owned or `Arc`-shared, so the job
        // closure is `'static` and can run on the shared worker pool
        // (`map_chunks` shares the one closure across chunks). The
        // assembled parameter matrices move in whole (a few hundred floats
        // per evaluation); the dataset buffers travel as `Arc` handles.
        let ctx = EvalCtx {
            shared: self.data.shared(),
            w,
            v,
            h,
            o,
            n_in,
            want_grad,
        };

        let threads = crate::par::resolve_threads(self.threads, crate::par::n_chunks(rows));
        let partials =
            crate::par::map_chunks(rows, threads, move |_c, range| eval_chunk(&ctx, range));

        // Ordered reduction: chunk 0 first, always.
        let mut loss = 0.0;
        let mut dw = Matrix::zeros(h, n_in);
        let mut dv = Matrix::zeros(o, h);
        for p in partials {
            loss += p.loss;
            if want_grad {
                crate::matrix::axpy(1.0, &p.dw, dw.as_mut_slice());
                crate::matrix::axpy(1.0, &p.dv, dv.as_mut_slice());
            }
        }

        // Penalty over active weights (+ gradient).
        for (k, (&p, link)) in x.iter().zip(&self.links).enumerate() {
            loss += self.penalty.value(p);
            if let Some(g) = grad.as_deref_mut() {
                let data_grad = match *link {
                    crate::LinkId::InputHidden { hidden, input } => dw[(hidden, input)],
                    crate::LinkId::HiddenOutput { output, hidden } => dv[(output, hidden)],
                };
                g[k] = data_grad + self.penalty.derivative(p);
            }
        }
        loss
    }
}

/// Everything one chunk evaluation needs, `'static` for the worker pool.
struct EvalCtx {
    /// `Arc` handles on the encoded dataset's batch buffers.
    shared: nr_encode::SharedBatch,
    /// Assembled dense input→hidden weights (masked entries zero).
    w: Matrix,
    /// Assembled dense hidden→output weights.
    v: Matrix,
    h: usize,
    o: usize,
    n_in: usize,
    want_grad: bool,
}

/// Per-chunk partial results, reduced in chunk order.
struct Partial {
    loss: f64,
    dw: Vec<f64>,
    dv: Vec<f64>,
}

/// One fixed-size chunk of rows: batch forward (`hidden = tanh(X·Wᵀ)`,
/// `S = σ(hidden·Vᵀ)`), cross entropy against the one-hot targets, and the
/// delta rules as transposed matmuls.
fn eval_chunk(ctx: &EvalCtx, range: std::ops::Range<usize>) -> Partial {
    let (h, o, n_in) = (ctx.h, ctx.o, ctx.n_in);
    let batch = ctx.shared.batch();
    // One-hot targets match the output layer only when every output node
    // corresponds to a class; subnetwork objectives with extra output
    // nodes fall back to expanding targets on the fly.
    let onehot = (o == batch.n_classes).then_some(batch.targets_onehot);
    let targets = ctx.shared.targets();
    let n = range.len();
    // The n-proportional buffers come from the thread-local scratch cache
    // (reused across this worker's chunks and calls); only the small
    // per-chunk gradients (`dw`, `dv` — a few hundred floats) are owned,
    // since they travel back through the ordered reduction.
    crate::par::with_scratch(&[n * h, n * o, n * o, n * h], |bufs| {
        let [hidden, out, delta, back] = bufs else {
            unreachable!("four scratch buffers requested");
        };

        // Forward pass over the assembled parameter matrices.
        crate::mlp::forward_kernel(
            crate::mlp::BatchInput::select(&batch, &range, n_in),
            n,
            (n_in, h, o),
            ctx.w.as_slice(),
            ctx.v.as_slice(),
            hidden,
            out,
        );

        // Cross entropy + output deltas D = S − T.
        let mut loss = 0.0;
        for (ri, i) in range.clone().enumerate() {
            let srow = &out[ri * o..(ri + 1) * o];
            let drow = &mut delta[ri * o..(ri + 1) * o];
            let target = targets[i];
            for (p, (&s, d)) in srow.iter().zip(drow.iter_mut()).enumerate() {
                let tph = match onehot {
                    Some(t) => t[i * o + p],
                    None => {
                        if p == target {
                            1.0
                        } else {
                            0.0
                        }
                    }
                };
                let sc = s.clamp(EPS, 1.0 - EPS);
                loss -= tph * sc.ln() + (1.0 - tph) * (1.0 - sc).ln();
                *d = s - tph; // dE/du_p for sigmoid + CE
            }
        }

        if !ctx.want_grad {
            return Partial {
                loss,
                dw: Vec::new(),
                dv: Vec::new(),
            };
        }

        // Backward: dV += Dᵀ·hidden; dW += ((D·V) ⊙ (1−hidden²))ᵀ·X.
        let mut dv = vec![0.0; o * h];
        crate::matrix::gemm_tn_acc(o, h, n, delta, hidden, &mut dv);
        crate::matrix::gemm_nn(n, h, o, delta, ctx.v.as_slice(), back);
        for (b, &a) in back.iter_mut().zip(hidden.iter()) {
            *b *= Activation::Tanh.derivative_from_output(a);
        }
        let mut dw = vec![0.0; h * n_in];
        match crate::mlp::BatchInput::select(&batch, &range, n_in) {
            crate::mlp::BatchInput::Bits { indices, offsets } => {
                crate::matrix::gemm_tn_bits_acc(h, n_in, n, back, indices, offsets, &mut dw)
            }
            crate::mlp::BatchInput::Dense(xs) => {
                crate::matrix::gemm_tn_acc(h, n_in, n, back, xs, &mut dw)
            }
        }
        Partial { loss, dw, dv }
    })
}

impl Objective for CrossEntropyObjective<'_> {
    fn dim(&self) -> usize {
        self.links.len()
    }

    fn value(&self, x: &[f64]) -> f64 {
        self.evaluate(x, None)
    }

    fn gradient(&self, x: &[f64], grad: &mut [f64]) {
        self.evaluate(x, Some(grad));
    }

    fn value_and_gradient(&self, x: &[f64], grad: &mut [f64]) -> f64 {
        self.evaluate(x, Some(grad))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LinkId;
    use nr_opt::numeric_gradient;

    fn toy_data() -> EncodedDataset {
        // 3 inputs (last = bias), 4 rows, 2 classes.
        EncodedDataset::from_parts(
            vec![
                1.0, 0.0, 1.0, //
                0.0, 1.0, 1.0, //
                1.0, 1.0, 1.0, //
                0.0, 0.0, 1.0,
            ],
            3,
            vec![0, 1, 0, 1],
            2,
        )
    }

    #[test]
    fn penalty_value_and_derivative() {
        let p = Penalty::default();
        assert_eq!(p.value(0.0), 0.0);
        assert_eq!(p.derivative(0.0), 0.0);
        // Saturating term tends to eps1 for large weights.
        assert!((p.value(100.0) - (0.1 + 1e-4 * 10_000.0)).abs() < 1e-3);
        // Finite difference check.
        for &t in &[-2.0, -0.3, 0.1, 1.5] {
            let h = 1e-7;
            let numeric = (p.value(t + h) - p.value(t - h)) / (2.0 * h);
            assert!((numeric - p.derivative(t)).abs() < 1e-6);
        }
    }

    #[test]
    fn penalty_none_is_zero() {
        let p = Penalty::none();
        assert_eq!(p.value(3.0), 0.0);
        assert_eq!(p.derivative(3.0), 0.0);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let net = Mlp::random(3, 3, 2, 11);
        let data = toy_data();
        let obj = CrossEntropyObjective::new(&net, &data, Penalty::default());
        let x = net.flatten_active();
        let mut analytic = vec![0.0; obj.dim()];
        obj.gradient(&x, &mut analytic);
        let numeric = numeric_gradient(&obj, &x, 1e-6);
        for (k, (a, n)) in analytic.iter().zip(&numeric).enumerate() {
            assert!(
                (a - n).abs() < 1e-5 * (1.0 + a.abs()),
                "coordinate {k}: analytic {a} vs numeric {n}"
            );
        }
    }

    #[test]
    fn gradient_matches_with_pruned_links() {
        let mut net = Mlp::random(3, 3, 2, 13);
        net.prune(LinkId::InputHidden {
            hidden: 0,
            input: 1,
        });
        net.prune(LinkId::HiddenOutput {
            output: 1,
            hidden: 2,
        });
        let data = toy_data();
        let obj = CrossEntropyObjective::new(&net, &data, Penalty::default());
        assert_eq!(obj.dim(), net.n_active());
        let x = net.flatten_active();
        let mut analytic = vec![0.0; obj.dim()];
        obj.gradient(&x, &mut analytic);
        let numeric = numeric_gradient(&obj, &x, 1e-6);
        for (a, n) in analytic.iter().zip(&numeric) {
            assert!((a - n).abs() < 1e-5 * (1.0 + a.abs()), "{a} vs {n}");
        }
    }

    #[test]
    fn value_and_gradient_consistent() {
        let net = Mlp::random(3, 2, 2, 17);
        let data = toy_data();
        let obj = CrossEntropyObjective::new(&net, &data, Penalty::default());
        let x = net.flatten_active();
        let mut g = vec![0.0; obj.dim()];
        let v1 = obj.value(&x);
        let v2 = obj.value_and_gradient(&x, &mut g);
        assert!((v1 - v2).abs() < 1e-12);
    }

    #[test]
    fn loss_decreases_along_negative_gradient() {
        let net = Mlp::random(3, 2, 2, 19);
        let data = toy_data();
        let obj = CrossEntropyObjective::new(&net, &data, Penalty::default());
        let x = net.flatten_active();
        let mut g = vec![0.0; obj.dim()];
        let f0 = obj.value_and_gradient(&x, &mut g);
        let step: Vec<f64> = x.iter().zip(&g).map(|(xi, gi)| xi - 1e-3 * gi).collect();
        assert!(obj.value(&step) < f0);
    }

    #[test]
    fn perfect_outputs_give_near_zero_loss() {
        // One input+bias, strong weights: class 0 for x=1 after training by hand.
        let mut net = Mlp::random(2, 1, 2, 23);
        net.set_weight(
            LinkId::InputHidden {
                hidden: 0,
                input: 0,
            },
            50.0,
        );
        net.set_weight(
            LinkId::InputHidden {
                hidden: 0,
                input: 1,
            },
            -25.0,
        );
        net.set_weight(
            LinkId::HiddenOutput {
                output: 0,
                hidden: 0,
            },
            50.0,
        );
        net.set_weight(
            LinkId::HiddenOutput {
                output: 1,
                hidden: 0,
            },
            -50.0,
        );
        let data = EncodedDataset::from_parts(vec![1.0, 1.0, 0.0, 1.0], 2, vec![0, 1], 2);
        let obj = CrossEntropyObjective::new(&net, &data, Penalty::none());
        let loss = obj.value(&net.flatten_active());
        assert!(loss < 1e-8, "loss {loss}");
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn rejects_mismatched_data() {
        let net = Mlp::random(3, 2, 2, 1);
        let data = EncodedDataset::from_parts(vec![1.0, 1.0], 2, vec![0], 2);
        let _ = CrossEntropyObjective::new(&net, &data, Penalty::default());
    }
}
