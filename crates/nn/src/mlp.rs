//! The three-layer network with prunable links.

use nr_encode::EncodedDataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::{Activation, Matrix};

/// Identifies one link (weight) of the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkId {
    /// Input→hidden weight `w^m_ℓ` (paper notation: hidden node `m`, input `ℓ`).
    InputHidden {
        /// Hidden node index.
        hidden: usize,
        /// Input node index.
        input: usize,
    },
    /// Hidden→output weight `v^m_p` (output node `p`, hidden node `m`).
    HiddenOutput {
        /// Output node index.
        output: usize,
        /// Hidden node index.
        hidden: usize,
    },
}

/// A three-layer feedforward network: tanh hidden layer, sigmoid output
/// layer, and a boolean mask per link.
///
/// Invariant: a masked (pruned) link always stores weight `0.0`, so the
/// forward pass never needs to consult the masks.
///
/// Bias handling follows the paper: the *encoder* appends an always-one
/// input (I87), so hidden thresholds are ordinary input→hidden weights and
/// output nodes have no threshold (eq. for `S_p` in §2.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    n_in: usize,
    n_hidden: usize,
    n_out: usize,
    w: Matrix,
    w_mask: Vec<bool>,
    v: Matrix,
    v_mask: Vec<bool>,
}

impl Mlp {
    /// Fully-connected network with weights drawn uniformly from [−1, 1]
    /// (the paper's initialization).
    pub fn random(n_in: usize, n_hidden: usize, n_out: usize, seed: u64) -> Self {
        assert!(n_in > 0 && n_hidden > 0 && n_out > 0, "degenerate topology");
        let mut rng = StdRng::seed_from_u64(seed);
        let w = Matrix::from_fn(n_hidden, n_in, |_, _| rng.gen_range(-1.0..=1.0));
        let v = Matrix::from_fn(n_out, n_hidden, |_, _| rng.gen_range(-1.0..=1.0));
        Mlp {
            n_in,
            n_hidden,
            n_out,
            w,
            w_mask: vec![true; n_hidden * n_in],
            v,
            v_mask: vec![true; n_out * n_hidden],
        }
    }

    /// Number of input nodes (including the encoder's bias input).
    pub fn n_inputs(&self) -> usize {
        self.n_in
    }

    /// Number of hidden nodes (including dead ones; see [`Mlp::hidden_is_dead`]).
    pub fn n_hidden(&self) -> usize {
        self.n_hidden
    }

    /// Number of output nodes (= number of classes).
    pub fn n_outputs(&self) -> usize {
        self.n_out
    }

    /// The input→hidden weight matrix (`n_hidden × n_in`).
    pub fn w(&self) -> &Matrix {
        &self.w
    }

    /// The hidden→output weight matrix (`n_out × n_hidden`).
    pub fn v(&self) -> &Matrix {
        &self.v
    }

    /// Weight of a link (0 when pruned).
    pub fn weight(&self, link: LinkId) -> f64 {
        match link {
            LinkId::InputHidden { hidden, input } => self.w[(hidden, input)],
            LinkId::HiddenOutput { output, hidden } => self.v[(output, hidden)],
        }
    }

    /// Sets a link weight (panics when the link is pruned).
    pub fn set_weight(&mut self, link: LinkId, value: f64) {
        assert!(
            self.is_active(link),
            "cannot set weight of pruned link {link:?}"
        );
        match link {
            LinkId::InputHidden { hidden, input } => self.w[(hidden, input)] = value,
            LinkId::HiddenOutput { output, hidden } => self.v[(output, hidden)] = value,
        }
    }

    /// Whether the link is still present.
    pub fn is_active(&self, link: LinkId) -> bool {
        match link {
            LinkId::InputHidden { hidden, input } => self.w_mask[hidden * self.n_in + input],
            LinkId::HiddenOutput { output, hidden } => self.v_mask[output * self.n_hidden + hidden],
        }
    }

    /// Removes a link: masks it and zeroes its weight.
    pub fn prune(&mut self, link: LinkId) {
        match link {
            LinkId::InputHidden { hidden, input } => {
                self.w_mask[hidden * self.n_in + input] = false;
                self.w[(hidden, input)] = 0.0;
            }
            LinkId::HiddenOutput { output, hidden } => {
                self.v_mask[output * self.n_hidden + hidden] = false;
                self.v[(output, hidden)] = 0.0;
            }
        }
    }

    /// Re-activates a pruned link with the given weight — the exact
    /// inverse of [`Mlp::prune`]; backs [`crate::UndoLog`] rollback.
    pub fn unprune(&mut self, link: LinkId, weight: f64) {
        assert!(!self.is_active(link), "cannot unprune active link {link:?}");
        match link {
            LinkId::InputHidden { hidden, input } => {
                self.w_mask[hidden * self.n_in + input] = true;
                self.w[(hidden, input)] = weight;
            }
            LinkId::HiddenOutput { output, hidden } => {
                self.v_mask[output * self.n_hidden + hidden] = true;
                self.v[(output, hidden)] = weight;
            }
        }
    }

    /// Total number of links (active or not): `h(n + m)` as in §2.2.
    pub fn n_links(&self) -> usize {
        self.n_hidden * (self.n_in + self.n_out)
    }

    /// Number of active (unpruned) links.
    pub fn n_active(&self) -> usize {
        self.w_mask.iter().filter(|&&b| b).count() + self.v_mask.iter().filter(|&&b| b).count()
    }

    /// Active links in canonical order (all `w` row-major, then all `v`).
    pub fn active_links(&self) -> Vec<LinkId> {
        let mut out = Vec::with_capacity(self.n_active());
        for m in 0..self.n_hidden {
            for l in 0..self.n_in {
                if self.w_mask[m * self.n_in + l] {
                    out.push(LinkId::InputHidden {
                        hidden: m,
                        input: l,
                    });
                }
            }
        }
        for p in 0..self.n_out {
            for m in 0..self.n_hidden {
                if self.v_mask[p * self.n_hidden + m] {
                    out.push(LinkId::HiddenOutput {
                        output: p,
                        hidden: m,
                    });
                }
            }
        }
        out
    }

    /// Copies the active weights into a flat vector (canonical order).
    pub fn flatten_active(&self) -> Vec<f64> {
        self.active_links()
            .iter()
            .map(|&l| self.weight(l))
            .collect()
    }

    /// Writes a flat vector of active weights back (canonical order).
    pub fn set_active(&mut self, params: &[f64]) {
        let links = self.active_links();
        assert_eq!(params.len(), links.len(), "parameter count mismatch");
        for (&link, &p) in links.iter().zip(params) {
            self.set_weight(link, p);
        }
    }

    /// Active input indices feeding hidden node `m`.
    pub fn hidden_inputs(&self, m: usize) -> Vec<usize> {
        (0..self.n_in)
            .filter(|&l| self.w_mask[m * self.n_in + l])
            .collect()
    }

    /// Active output indices fed by hidden node `m`.
    pub fn hidden_outputs(&self, m: usize) -> Vec<usize> {
        (0..self.n_out)
            .filter(|&p| self.v_mask[p * self.n_hidden + m])
            .collect()
    }

    /// A hidden node is dead when it has no active input links or no active
    /// output links; it then plays no role in classification.
    pub fn hidden_is_dead(&self, m: usize) -> bool {
        self.hidden_inputs(m).is_empty() || self.hidden_outputs(m).is_empty()
    }

    /// Hidden nodes that still participate in the classification.
    pub fn live_hidden(&self) -> Vec<usize> {
        (0..self.n_hidden)
            .filter(|&m| !self.hidden_is_dead(m))
            .collect()
    }

    /// Masks every link touching dead hidden nodes (repeats until fixpoint,
    /// since removing a node can orphan others). Returns the dead nodes.
    pub fn remove_dead_hidden(&mut self) -> Vec<usize> {
        let mut dead = Vec::new();
        loop {
            let mut changed = false;
            for m in 0..self.n_hidden {
                if self.hidden_is_dead(m) {
                    for l in 0..self.n_in {
                        if self.w_mask[m * self.n_in + l] {
                            self.prune(LinkId::InputHidden {
                                hidden: m,
                                input: l,
                            });
                            changed = true;
                        }
                    }
                    for p in 0..self.n_out {
                        if self.v_mask[p * self.n_hidden + m] {
                            self.prune(LinkId::HiddenOutput {
                                output: p,
                                hidden: m,
                            });
                            changed = true;
                        }
                    }
                    if changed && !dead.contains(&m) {
                        dead.push(m);
                    }
                }
            }
            if !changed {
                break;
            }
        }
        dead.sort_unstable();
        dead
    }

    /// Inputs with no active link to any hidden node — the de-selected
    /// features of §2.1 ("an input node with no connection … can be removed").
    pub fn unused_inputs(&self) -> Vec<usize> {
        (0..self.n_in)
            .filter(|&l| (0..self.n_hidden).all(|m| !self.w_mask[m * self.n_in + l]))
            .collect()
    }

    /// Inputs that still influence the network.
    pub fn used_inputs(&self) -> Vec<usize> {
        (0..self.n_in)
            .filter(|&l| (0..self.n_hidden).any(|m| self.w_mask[m * self.n_in + l]))
            .collect()
    }

    /// Forward pass writing hidden activations and outputs into buffers.
    #[inline]
    pub fn forward_into(&self, x: &[f64], hidden: &mut [f64], out: &mut [f64]) {
        debug_assert_eq!(x.len(), self.n_in);
        debug_assert_eq!(hidden.len(), self.n_hidden);
        debug_assert_eq!(out.len(), self.n_out);
        for (m, h) in hidden.iter_mut().enumerate() {
            let row = self.w.row(m);
            let mut z = 0.0;
            for (wi, xi) in row.iter().zip(x) {
                z += wi * xi;
            }
            *h = Activation::Tanh.apply(z);
        }
        self.output_from_hidden(hidden, out);
    }

    /// Output layer alone: `S_p = σ(Σ_m α_m v_pm)`. RX uses this to check
    /// accuracy with discretized hidden activations.
    #[inline]
    pub fn output_from_hidden(&self, hidden: &[f64], out: &mut [f64]) {
        for (p, o) in out.iter_mut().enumerate() {
            let row = self.v.row(p);
            let mut u = 0.0;
            for (vi, ai) in row.iter().zip(hidden) {
                u += vi * ai;
            }
            *o = Activation::Sigmoid.apply(u);
        }
    }

    /// Forward pass, allocating.
    pub fn forward(&self, x: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let mut hidden = vec![0.0; self.n_hidden];
        let mut out = vec![0.0; self.n_out];
        self.forward_into(x, &mut hidden, &mut out);
        (hidden, out)
    }

    /// Predicted class = output node with the largest activation (§2.1).
    pub fn classify(&self, x: &[f64]) -> usize {
        let (_, out) = self.forward(x);
        argmax(&out)
    }

    /// Batched forward pass over `rows` row-major input rows, writing the
    /// hidden activations (`rows × n_hidden`) and outputs (`rows × n_out`)
    /// into the given buffers.
    ///
    /// Computed as `hidden = tanh(X·Wᵀ)`, `out = σ(hidden·Vᵀ)` with the
    /// blocked [`crate::gemm_nt`] kernel; every row's result is
    /// bit-identical to [`Mlp::forward_into`] on that row.
    pub fn forward_batch_into(&self, x: &[f64], rows: usize, hidden: &mut [f64], out: &mut [f64]) {
        assert_eq!(x.len(), rows * self.n_in, "input shape mismatch");
        forward_kernel(
            BatchInput::Dense(x),
            rows,
            (self.n_in, self.n_hidden, self.n_out),
            self.w.as_slice(),
            self.v.as_slice(),
            hidden,
            out,
        );
    }

    /// Batched forward pass, allocating: returns the hidden activations
    /// (`rows × n_hidden`) and outputs (`rows × n_out`) as matrices.
    pub fn forward_batch(&self, x: &[f64], rows: usize) -> (Matrix, Matrix) {
        let mut hidden = vec![0.0; rows * self.n_hidden];
        let mut out = vec![0.0; rows * self.n_out];
        self.forward_batch_into(x, rows, &mut hidden, &mut out);
        (
            Matrix::from_raw(rows, self.n_hidden, hidden),
            Matrix::from_raw(rows, self.n_out, out),
        )
    }

    /// Runs `score` over the outputs of every row, on fixed-size chunks
    /// dispatched to the shared worker pool (inline for single-chunk
    /// datasets), summing the per-chunk counts in chunk order.
    ///
    /// `score` is a concrete enum rather than a closure so the chunk jobs
    /// are `'static` (the pool outlives any borrow of `self`); the weights
    /// are cloned into the job (a few hundred floats) and the batch buffers
    /// travel as `Arc` handles.
    fn count_rows(&self, data: &EncodedDataset, score: RowScore) -> usize {
        let (n_in, h, o) = (self.n_in, self.n_hidden, self.n_out);
        let rows = data.rows();
        let threads = crate::par::resolve_threads(0, crate::par::n_chunks(rows));
        let shared = data.shared();
        let w = self.w.clone();
        let v = self.v.clone();
        crate::par::map_chunks(rows, threads, move |_c, range| {
            shared_chunk_forward(&shared, range.clone(), (n_in, h, o), &w, &v, |out| {
                let targets = shared.targets();
                out.chunks_exact(o)
                    .zip(range.clone())
                    .filter(|(row_out, i)| match score {
                        RowScore::Argmax => argmax(row_out) == targets[*i],
                        RowScore::Condition1(eta1) => condition1(row_out, targets[*i], eta1),
                    })
                    .count()
            })
        })
        .into_iter()
        .sum()
    }

    /// Predicted classes for every row of an encoded dataset (argmax rule),
    /// appended to `preds`. Processes fixed-size row chunks with reusable
    /// scratch (and worker threads when the batch spans several chunks);
    /// per-row results equal [`Mlp::classify`] bit for bit.
    pub fn classify_batch_into(&self, data: &EncodedDataset, preds: &mut Vec<usize>) {
        let (n_in, h, o) = (self.n_in, self.n_hidden, self.n_out);
        let rows = data.rows();
        let threads = crate::par::resolve_threads(0, crate::par::n_chunks(rows));
        let shared = data.shared();
        let w = self.w.clone();
        let v = self.v.clone();
        let chunks = crate::par::map_chunks(rows, threads, move |_c, range| {
            shared_chunk_forward(&shared, range, (n_in, h, o), &w, &v, |out| {
                out.chunks_exact(o).map(argmax).collect::<Vec<_>>()
            })
        });
        for chunk in chunks {
            preds.extend(chunk);
        }
    }

    /// Predicted classes for every row of an encoded dataset, allocating.
    pub fn classify_batch(&self, data: &EncodedDataset) -> Vec<usize> {
        let mut preds = Vec::with_capacity(data.rows());
        self.classify_batch_into(data, &mut preds);
        preds
    }

    /// Predicted class **and the winning output activation** for every
    /// row of an encoded dataset — the scored variant backing serving's
    /// `predict_scored_batch`. Same pooled fixed-chunk traversal as
    /// [`Mlp::classify_batch`]; per-row results equal
    /// [`Mlp::forward`] + argmax bit for bit.
    pub fn classify_scored_batch(&self, data: &EncodedDataset) -> Vec<(usize, f64)> {
        let (n_in, h, o) = (self.n_in, self.n_hidden, self.n_out);
        let rows = data.rows();
        let threads = crate::par::resolve_threads(0, crate::par::n_chunks(rows));
        let shared = data.shared();
        let w = self.w.clone();
        let v = self.v.clone();
        let chunks = crate::par::map_chunks(rows, threads, move |_c, range| {
            shared_chunk_forward(&shared, range, (n_in, h, o), &w, &v, |out| {
                out.chunks_exact(o)
                    .map(|row| {
                        let class = argmax(row);
                        (class, row[class])
                    })
                    .collect::<Vec<_>>()
            })
        });
        let mut preds = Vec::with_capacity(rows);
        for chunk in chunks {
            preds.extend(chunk);
        }
        preds
    }

    /// Fraction of the dataset classified correctly (argmax rule).
    ///
    /// Runs on the batched kernels; equal to classifying row by row.
    pub fn accuracy(&self, data: &EncodedDataset) -> f64 {
        if data.rows() == 0 {
            return 0.0;
        }
        let correct = self.count_rows(data, RowScore::Argmax);
        correct as f64 / data.rows() as f64
    }

    /// Accuracy of several **removal candidates** of this network at once:
    /// candidate `k` is this network with the links in `removals[k]`
    /// additionally zeroed (a pruned link and a zero weight are
    /// forward-equivalent), so result `k` equals what [`Mlp::accuracy`]
    /// would return after pruning those links — bit for bit.
    ///
    /// All `candidate × row-chunk` evaluations run as jobs on the shared
    /// worker pool and each candidate's correct counts are reduced in
    /// chunk order, so the results do not depend on the thread count
    /// (`threads`: `0` = auto, `1` = inline on the caller's thread). This
    /// is the parallel accuracy gate of the incremental pruning engine:
    /// at paper scale a dataset is a single chunk, so cross-candidate
    /// parallelism is what the pool actually buys.
    pub fn accuracy_many(
        &self,
        data: &EncodedDataset,
        removals: &[Vec<LinkId>],
        threads: usize,
    ) -> Vec<f64> {
        if removals.is_empty() {
            return Vec::new();
        }
        let rows = data.rows();
        if rows == 0 {
            return vec![0.0; removals.len()];
        }
        let chunks = crate::par::n_chunks(rows);
        let threads = crate::par::resolve_threads(threads, removals.len() * chunks);
        let (n_in, h, o) = (self.n_in, self.n_hidden, self.n_out);
        let variants: std::sync::Arc<Vec<(Matrix, Matrix)>> = std::sync::Arc::new(
            removals
                .iter()
                .map(|links| {
                    let mut w = self.w.clone();
                    let mut v = self.v.clone();
                    for &l in links {
                        match l {
                            LinkId::InputHidden { hidden, input } => w[(hidden, input)] = 0.0,
                            LinkId::HiddenOutput { output, hidden } => v[(output, hidden)] = 0.0,
                        }
                    }
                    (w, v)
                })
                .collect(),
        );
        let shared = data.shared();
        let counts = crate::par::map_indexed(variants.len() * chunks, threads, move |j| {
            let (cand, chunk) = (j / chunks, j % chunks);
            let range = crate::par::chunk_range(chunk, rows);
            let (w, v) = &variants[cand];
            shared_chunk_forward(&shared, range.clone(), (n_in, h, o), w, v, |out| {
                let targets = shared.targets();
                out.chunks_exact(o)
                    .zip(range.clone())
                    .filter(|(row_out, i)| argmax(row_out) == targets[*i])
                    .count()
            })
        });
        counts
            .chunks_exact(chunks)
            .map(|per_chunk| per_chunk.iter().sum::<usize>() as f64 / rows as f64)
            .collect()
    }

    /// Condition (1) of the paper: `max_p |S_p − t_p| ≤ η₁`.
    pub fn condition1_holds(&self, x: &[f64], target: usize, eta1: f64) -> bool {
        let (_, out) = self.forward(x);
        condition1(&out, target, eta1)
    }

    /// Fraction of rows satisfying condition (1) — the strict notion of
    /// "correctly classified" used by the pruning theory (§2.2).
    ///
    /// Runs on the batched kernels; equal to checking row by row.
    pub fn strict_accuracy(&self, data: &EncodedDataset, eta1: f64) -> f64 {
        if data.rows() == 0 {
            return 0.0;
        }
        let correct = self.count_rows(data, RowScore::Condition1(eta1));
        correct as f64 / data.rows() as f64
    }
}

/// One chunk's forward pass over `Arc`-shared batch buffers with
/// thread-local scratch, handing the output activations (`range.len() × o`,
/// row-major) to `f`. The single setup path for every pooled dataset
/// traversal (`count_rows`, `classify_batch_into`).
fn shared_chunk_forward<T>(
    shared: &nr_encode::SharedBatch,
    range: std::ops::Range<usize>,
    (n_in, h, o): (usize, usize, usize),
    w: &Matrix,
    v: &Matrix,
    f: impl FnOnce(&[f64]) -> T,
) -> T {
    let batch = shared.batch();
    let n = range.len();
    crate::par::with_scratch(&[n * h, n * o], |bufs| {
        let [hidden, out] = bufs else {
            unreachable!("two scratch buffers requested");
        };
        forward_kernel(
            BatchInput::select(&batch, &range, n_in),
            n,
            (n_in, h, o),
            w.as_slice(),
            v.as_slice(),
            hidden,
            out,
        );
        f(out)
    })
}

/// Per-row acceptance criterion for [`Mlp::count_rows`] chunk jobs.
#[derive(Clone, Copy)]
enum RowScore {
    /// Argmax output equals the target class.
    Argmax,
    /// Condition (1) of the paper holds with the given η₁.
    Condition1(f64),
}

/// Input rows for one batched forward pass: dense row-major data, or the
/// set-bit layout of strictly-0/1 data.
pub(crate) enum BatchInput<'a> {
    /// Row-major `rows × n_in`.
    Dense(&'a [f64]),
    /// Per-row ascending set-bit column indices; `offsets` (length
    /// `rows + 1`) holds absolute positions into `indices`.
    Bits {
        /// Concatenated set-bit indices.
        indices: &'a [u32],
        /// Per-row offsets into `indices`.
        offsets: &'a [usize],
    },
}

impl<'a> BatchInput<'a> {
    /// The given row range of an encoded batch, preferring the set-bit
    /// layout when the dataset carries one.
    pub(crate) fn select(
        batch: &nr_encode::EncodedBatch<'a>,
        range: &std::ops::Range<usize>,
        n_in: usize,
    ) -> Self {
        match batch.bits {
            Some(bits) => BatchInput::Bits {
                indices: bits.indices(),
                offsets: &bits.offsets()[range.start..=range.end],
            },
            None => BatchInput::Dense(&batch.inputs[range.start * n_in..range.end * n_in]),
        }
    }
}

/// The one batched forward sequence every batch caller shares:
/// `hidden = tanh(X·Wᵀ)`, `out = σ(hidden·Vᵀ)`, with the input-layer
/// product dispatched to the dense or set-bit kernel.
///
/// `dims` is `(n_in, n_hidden, n_out)`; `w` is `n_hidden × n_in` and `v`
/// is `n_out × n_hidden`, both row-major (either a network's weights or
/// the objective's assembled parameter matrices). Bit-identical to the
/// per-row [`Mlp::forward_into`] loop on every row — keep it that way:
/// the equivalence tests in `tests/batch_parallel.rs` pin this function
/// for all callers at once.
pub(crate) fn forward_kernel(
    input: BatchInput<'_>,
    rows: usize,
    dims: (usize, usize, usize),
    w: &[f64],
    v: &[f64],
    hidden: &mut [f64],
    out: &mut [f64],
) {
    let (n_in, n_hidden, n_out) = dims;
    assert_eq!(hidden.len(), rows * n_hidden, "hidden shape mismatch");
    assert_eq!(out.len(), rows * n_out, "output shape mismatch");
    match input {
        BatchInput::Dense(x) => crate::matrix::gemm_nt(rows, n_hidden, n_in, x, w, hidden),
        BatchInput::Bits { indices, offsets } => {
            crate::matrix::gemm_bits_nt(rows, n_hidden, n_in, indices, offsets, w, hidden)
        }
    }
    for a in hidden.iter_mut() {
        *a = Activation::Tanh.apply(*a);
    }
    crate::matrix::gemm_nt(rows, n_out, n_hidden, hidden, v, out);
    for s in out.iter_mut() {
        *s = Activation::Sigmoid.apply(*s);
    }
}

/// `max_p |S_p − t_p| ≤ η₁` for one output row.
fn condition1(out: &[f64], target: usize, eta1: f64) -> bool {
    out.iter()
        .enumerate()
        .map(|(p, s)| (s - if p == target { 1.0 } else { 0.0 }).abs())
        .fold(0.0f64, f64::max)
        <= eta1
}

/// Index of the maximum element, **first on ties** — the tie-breaking rule
/// used consistently across the whole pipeline (a pruned network can emit
/// exactly tied outputs, e.g. σ(0) on both nodes, so consistency matters).
pub fn argmax(xs: &[f64]) -> usize {
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate().skip(1) {
        if x > xs[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 2-in (incl. bias), 2-hidden, 1-out net with hand-set weights.
    fn tiny() -> Mlp {
        let mut net = Mlp::random(2, 2, 1, 0);
        net.set_weight(
            LinkId::InputHidden {
                hidden: 0,
                input: 0,
            },
            1.0,
        );
        net.set_weight(
            LinkId::InputHidden {
                hidden: 0,
                input: 1,
            },
            0.5,
        );
        net.set_weight(
            LinkId::InputHidden {
                hidden: 1,
                input: 0,
            },
            -1.0,
        );
        net.set_weight(
            LinkId::InputHidden {
                hidden: 1,
                input: 1,
            },
            0.0,
        );
        net.set_weight(
            LinkId::HiddenOutput {
                output: 0,
                hidden: 0,
            },
            2.0,
        );
        net.set_weight(
            LinkId::HiddenOutput {
                output: 0,
                hidden: 1,
            },
            -1.0,
        );
        net
    }

    #[test]
    fn forward_matches_hand_computation() {
        let net = tiny();
        let x = [1.0, 1.0];
        let (hidden, out) = net.forward(&x);
        let a0 = (1.5f64).tanh();
        let a1 = (-1.0f64).tanh();
        assert!((hidden[0] - a0).abs() < 1e-15);
        assert!((hidden[1] - a1).abs() < 1e-15);
        let u = 2.0 * a0 - a1;
        let s = 1.0 / (1.0 + (-u).exp());
        assert!((out[0] - s).abs() < 1e-15);
    }

    #[test]
    fn pruned_link_contributes_nothing() {
        let mut net = tiny();
        let x = [1.0, 1.0];
        let before = net.forward(&x).1[0];
        net.prune(LinkId::InputHidden {
            hidden: 0,
            input: 1,
        });
        let after = net.forward(&x).1[0];
        assert_ne!(before, after);
        // Equivalent to weight 0.
        let a0 = (1.0f64).tanh();
        let a1 = (-1.0f64).tanh();
        let s = 1.0 / (1.0 + (-(2.0 * a0 - a1)).exp());
        assert!((after - s).abs() < 1e-15);
        assert!(!net.is_active(LinkId::InputHidden {
            hidden: 0,
            input: 1
        }));
        assert_eq!(
            net.weight(LinkId::InputHidden {
                hidden: 0,
                input: 1
            }),
            0.0
        );
    }

    #[test]
    #[should_panic(expected = "pruned link")]
    fn setting_pruned_weight_panics() {
        let mut net = tiny();
        net.prune(LinkId::InputHidden {
            hidden: 0,
            input: 0,
        });
        net.set_weight(
            LinkId::InputHidden {
                hidden: 0,
                input: 0,
            },
            3.0,
        );
    }

    #[test]
    fn random_weights_in_range() {
        let net = Mlp::random(87, 4, 2, 42);
        assert_eq!(net.n_links(), 4 * (87 + 2));
        assert_eq!(net.n_active(), net.n_links());
        for &w in net.w().as_slice().iter().chain(net.v().as_slice()) {
            assert!((-1.0..=1.0).contains(&w));
        }
        // Deterministic per seed.
        assert_eq!(net, Mlp::random(87, 4, 2, 42));
        assert_ne!(net, Mlp::random(87, 4, 2, 43));
    }

    #[test]
    fn flatten_roundtrip_with_mask() {
        let mut net = tiny();
        net.prune(LinkId::InputHidden {
            hidden: 1,
            input: 1,
        });
        let params = net.flatten_active();
        assert_eq!(params.len(), net.n_active());
        assert_eq!(params.len(), 5);
        let mut net2 = net.clone();
        net2.set_active(&params);
        assert_eq!(net, net2);
    }

    #[test]
    fn dead_hidden_detection_and_removal() {
        let mut net = tiny();
        // Kill hidden 1's only output link.
        net.prune(LinkId::HiddenOutput {
            output: 0,
            hidden: 1,
        });
        assert!(net.hidden_is_dead(1));
        assert!(!net.hidden_is_dead(0));
        assert_eq!(net.live_hidden(), vec![0]);
        let dead = net.remove_dead_hidden();
        assert_eq!(dead, vec![1]);
        // Its input links are now masked too.
        assert!(!net.is_active(LinkId::InputHidden {
            hidden: 1,
            input: 0
        }));
        assert_eq!(net.unused_inputs(), Vec::<usize>::new()); // input 0 feeds hidden 0
    }

    #[test]
    fn unused_inputs_after_pruning() {
        let mut net = tiny();
        net.prune(LinkId::InputHidden {
            hidden: 0,
            input: 1,
        });
        net.prune(LinkId::InputHidden {
            hidden: 1,
            input: 1,
        });
        assert_eq!(net.unused_inputs(), vec![1]);
        assert_eq!(net.used_inputs(), vec![0]);
    }

    #[test]
    fn classify_and_accuracy() {
        let net = tiny();
        let data =
            nr_encode::EncodedDataset::from_parts(vec![1.0, 1.0, -1.0, 1.0], 2, vec![0, 0], 1);
        // Single output: argmax is always node 0.
        assert_eq!(net.classify(&[1.0, 1.0]), 0);
        assert_eq!(net.accuracy(&data), 1.0);
    }

    #[test]
    fn scored_batch_matches_per_row_forward() {
        let net = tiny();
        let data = nr_encode::EncodedDataset::from_parts(
            vec![1.0, 1.0, -1.0, 1.0, 0.0, 1.0],
            2,
            vec![0, 0, 0],
            1,
        );
        let scored = net.classify_scored_batch(&data);
        assert_eq!(scored.len(), 3);
        for (i, &(class, score)) in scored.iter().enumerate() {
            let (_, out) = net.forward(data.input(i));
            assert_eq!(class, argmax(&out));
            assert_eq!(score, out[class], "row {i} activation must be exact");
        }
    }

    #[test]
    fn condition1_strictness() {
        let net = tiny();
        let x = [1.0, 1.0];
        let (_, out) = net.forward(&x);
        let err = (out[0] - 1.0).abs();
        assert!(net.condition1_holds(&x, 0, err + 0.01));
        assert!(!net.condition1_holds(&x, 0, err - 0.01));
    }

    #[test]
    fn output_from_hidden_matches_forward() {
        let net = tiny();
        let x = [0.3, -0.7];
        let (hidden, out) = net.forward(&x);
        let mut out2 = vec![0.0; 1];
        net.output_from_hidden(&hidden, &mut out2);
        assert_eq!(out, out2);
    }

    #[test]
    fn serde_roundtrip() {
        let mut net = tiny();
        net.prune(LinkId::InputHidden {
            hidden: 0,
            input: 0,
        });
        let json = serde_json::to_string(&net).unwrap();
        let back: Mlp = serde_json::from_str(&json).unwrap();
        assert_eq!(net, back);
    }

    #[test]
    fn accuracy_many_matches_pruned_accuracy() {
        // 3 inputs (last = bias), alternating classes.
        let mut inputs = Vec::new();
        let mut targets = Vec::new();
        for i in 0..50 {
            let b0 = (i % 2) as f64;
            let b1 = ((i / 2) % 2) as f64;
            inputs.extend_from_slice(&[b0, b1, 1.0]);
            targets.push(if b0 == 1.0 { 0 } else { 1 });
        }
        let data = nr_encode::EncodedDataset::from_parts(inputs, 3, targets, 2);
        let net = Mlp::random(3, 3, 2, 29);
        let removals: Vec<Vec<LinkId>> = vec![
            vec![],
            vec![LinkId::InputHidden {
                hidden: 0,
                input: 0,
            }],
            vec![
                LinkId::InputHidden {
                    hidden: 1,
                    input: 1,
                },
                LinkId::HiddenOutput {
                    output: 0,
                    hidden: 2,
                },
            ],
        ];
        for threads in [0, 1, 2] {
            let got = net.accuracy_many(&data, &removals, threads);
            assert_eq!(got.len(), removals.len());
            for (links, &acc) in removals.iter().zip(&got) {
                let mut candidate = net.clone();
                for &l in links {
                    candidate.prune(l);
                }
                assert_eq!(
                    acc,
                    candidate.accuracy(&data),
                    "candidate {links:?} at {threads} threads"
                );
            }
        }
        assert_eq!(net.accuracy_many(&data, &[], 0), Vec::<f64>::new());
    }

    #[test]
    fn argmax_first_on_ties() {
        assert_eq!(argmax(&[0.5, 0.5]), 0);
        assert_eq!(argmax(&[0.1, 0.9, 0.3]), 1);
        assert_eq!(argmax(&[2.0]), 0);
    }
}
