//! Delta checkpoints for the pruning loop.
//!
//! Algorithm NP speculatively removes links, retrains, and rolls the
//! network back when the accuracy floor is violated. Cloning the whole
//! [`Mlp`] per attempt makes that rollback O(network); an [`UndoLog`]
//! records only what an attempt actually changed — the pruned links (with
//! their weights) and, when a retrain ran, the active weights it was about
//! to overwrite — so rollback is O(changed).
//!
//! Entries replay in reverse order: a retrain snapshot restores the
//! post-removal weights first, then each pruned link is re-activated with
//! its original weight. [`Mlp::rollback`] therefore reproduces the
//! checkpointed network exactly (masks and weights, `==`-equal).

use crate::{LinkId, Mlp};

/// A compact record of the changes one pruning attempt made to an [`Mlp`],
/// sufficient to restore the starting state exactly.
#[derive(Debug, Clone, Default)]
pub struct UndoLog {
    entries: Vec<UndoEntry>,
}

#[derive(Debug, Clone)]
enum UndoEntry {
    /// A link that was pruned, with the weight it carried.
    Pruned { link: LinkId, weight: f64 },
    /// A snapshot of the active weights taken just before a retrain
    /// overwrote them (canonical active-link order at snapshot time).
    Weights {
        links: Vec<LinkId>,
        values: Vec<f64>,
    },
}

impl UndoLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded entries (pruned links count one each; a weight
    /// snapshot counts one).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl Mlp {
    /// Removes a link like [`Mlp::prune`], recording it (and its weight)
    /// in `log` so [`Mlp::rollback`] can restore it.
    pub fn prune_logged(&mut self, link: LinkId, log: &mut UndoLog) {
        debug_assert!(self.is_active(link), "pruning an already-pruned link");
        log.entries.push(UndoEntry::Pruned {
            link,
            weight: self.weight(link),
        });
        self.prune(link);
    }

    /// Snapshots the current active weights into `log`. Call immediately
    /// before a retrain so a later [`Mlp::rollback`] can undo it.
    pub fn log_active_weights(&self, log: &mut UndoLog) {
        log.entries.push(UndoEntry::Weights {
            links: self.active_links(),
            values: self.flatten_active(),
        });
    }

    /// Replays `log` backwards, restoring the network to the exact state
    /// it had when the log was empty (weight snapshots are written back,
    /// pruned links re-activated with their original weights).
    pub fn rollback(&mut self, log: UndoLog) {
        for entry in log.entries.into_iter().rev() {
            match entry {
                UndoEntry::Weights { links, values } => {
                    for (&link, &value) in links.iter().zip(&values) {
                        self.set_weight(link, value);
                    }
                }
                UndoEntry::Pruned { link, weight } => self.unprune(link, weight),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rollback_restores_pruned_links_exactly() {
        let mut net = Mlp::random(5, 3, 2, 7);
        let before = net.clone();
        let mut log = UndoLog::new();
        net.prune_logged(
            LinkId::InputHidden {
                hidden: 1,
                input: 2,
            },
            &mut log,
        );
        net.prune_logged(
            LinkId::HiddenOutput {
                output: 0,
                hidden: 2,
            },
            &mut log,
        );
        assert_eq!(log.len(), 2);
        assert_ne!(net, before);
        net.rollback(log);
        assert_eq!(net, before);
    }

    #[test]
    fn rollback_restores_retrained_weights() {
        let mut net = Mlp::random(4, 2, 2, 11);
        let before = net.clone();
        let mut log = UndoLog::new();
        net.prune_logged(
            LinkId::InputHidden {
                hidden: 0,
                input: 3,
            },
            &mut log,
        );
        // "Retrain": snapshot, then scribble over every surviving weight.
        net.log_active_weights(&mut log);
        let links = net.active_links();
        for (k, &link) in links.iter().enumerate() {
            net.set_weight(link, 0.25 * (k as f64 + 1.0));
        }
        assert_ne!(net, before);
        net.rollback(log);
        assert_eq!(net, before);
    }

    #[test]
    fn empty_log_is_a_noop() {
        let mut net = Mlp::random(3, 2, 2, 13);
        let before = net.clone();
        let log = UndoLog::new();
        assert!(log.is_empty());
        net.rollback(log);
        assert_eq!(net, before);
    }

    #[test]
    #[should_panic(expected = "cannot unprune")]
    fn unprune_of_active_link_panics() {
        let mut net = Mlp::random(3, 2, 2, 17);
        net.unprune(
            LinkId::InputHidden {
                hidden: 0,
                input: 0,
            },
            1.0,
        );
    }
}
