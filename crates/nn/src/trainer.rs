//! High-level training entry point.

use nr_encode::EncodedDataset;
use nr_opt::{Bfgs, ConjugateGradient, GradientDescent, Lbfgs, Optimizer};
use serde::{Deserialize, Serialize};

use crate::{CrossEntropyObjective, Mlp, Penalty};

/// Which minimizer drives training.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TrainingAlgorithm {
    /// BFGS quasi-Newton (the paper's choice; superlinear convergence).
    Bfgs(Bfgs),
    /// Limited-memory BFGS (for larger networks).
    Lbfgs(Lbfgs),
    /// Polak–Ribière+ conjugate gradient (matrix-free).
    ConjugateGradient(ConjugateGradient),
    /// Gradient descent with momentum (classic backpropagation; ablation).
    GradientDescent(GradientDescent),
}

impl Default for TrainingAlgorithm {
    fn default() -> Self {
        TrainingAlgorithm::Bfgs(Bfgs::default().with_max_iters(300))
    }
}

/// Outcome of one training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Final objective value (cross entropy + penalty).
    pub loss: f64,
    /// Gradient infinity norm at the final weights.
    pub grad_norm: f64,
    /// Optimizer iterations.
    pub iterations: usize,
    /// Objective evaluations.
    pub evaluations: usize,
    /// Whether the gradient tolerance was reached ("a local minimum … has
    /// been reached", §2.1).
    pub converged: bool,
    /// Training-set accuracy (argmax rule) of the trained network.
    pub accuracy: f64,
}

/// Trains a network in place: minimizes eq. 2 + eq. 3 over the active
/// weights and writes the optimum back.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Trainer {
    /// The minimizer.
    pub algorithm: TrainingAlgorithm,
    /// The weight-decay penalty (eq. 3).
    pub penalty: Penalty,
}

impl Trainer {
    /// Trainer with the given algorithm and the default penalty.
    pub fn new(algorithm: TrainingAlgorithm) -> Self {
        Trainer {
            algorithm,
            penalty: Penalty::default(),
        }
    }

    /// Replaces the penalty.
    pub fn with_penalty(mut self, penalty: Penalty) -> Self {
        self.penalty = penalty;
        self
    }

    /// Trains `net` on `data`, mutating its weights; returns a report.
    pub fn train(&self, net: &mut Mlp, data: &EncodedDataset) -> TrainReport {
        let x0 = net.flatten_active();
        let result = {
            let objective = CrossEntropyObjective::new(net, data, self.penalty);
            match &self.algorithm {
                TrainingAlgorithm::Bfgs(b) => b.minimize(&objective, x0),
                TrainingAlgorithm::Lbfgs(l) => l.minimize(&objective, x0),
                TrainingAlgorithm::ConjugateGradient(c) => c.minimize(&objective, x0),
                TrainingAlgorithm::GradientDescent(g) => g.minimize(&objective, x0),
            }
        };
        net.set_active(&result.x);
        TrainReport {
            loss: result.value,
            grad_norm: result.grad_norm,
            iterations: result.iterations,
            evaluations: result.evaluations,
            converged: result.converged,
            accuracy: net.accuracy(data),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Linearly separable toy problem: class = bit 0.
    fn separable(n: usize) -> EncodedDataset {
        let mut data = Vec::new();
        let mut targets = Vec::new();
        for i in 0..n {
            let b0 = (i % 2) as f64;
            let b1 = ((i / 2) % 2) as f64;
            data.extend_from_slice(&[b0, b1, 1.0]);
            targets.push(if b0 == 1.0 { 0 } else { 1 });
        }
        EncodedDataset::from_parts(data, 3, targets, 2)
    }

    #[test]
    fn bfgs_learns_separable_data() {
        let data = separable(40);
        let mut net = Mlp::random(3, 3, 2, 5);
        let report = Trainer::default().train(&mut net, &data);
        assert_eq!(report.accuracy, 1.0, "{report:?}");
        assert!(report.loss < 10.0);
    }

    #[test]
    fn lbfgs_learns_separable_data() {
        let data = separable(40);
        let mut net = Mlp::random(3, 3, 2, 5);
        let algo = TrainingAlgorithm::Lbfgs(nr_opt::Lbfgs::default().with_max_iters(300));
        let report = Trainer::new(algo).train(&mut net, &data);
        assert_eq!(report.accuracy, 1.0, "{report:?}");
    }

    #[test]
    fn conjugate_gradient_learns_separable_data() {
        let data = separable(40);
        let mut net = Mlp::random(3, 3, 2, 5);
        let algo = TrainingAlgorithm::ConjugateGradient(
            nr_opt::ConjugateGradient::default().with_max_iters(500),
        );
        let report = Trainer::new(algo).train(&mut net, &data);
        assert_eq!(report.accuracy, 1.0, "{report:?}");
    }

    #[test]
    fn gradient_descent_learns_separable_data() {
        let data = separable(40);
        let mut net = Mlp::random(3, 3, 2, 5);
        let algo = TrainingAlgorithm::GradientDescent(
            GradientDescent::default()
                .with_learning_rate(0.05)
                .with_max_iters(3000),
        );
        let report = Trainer::new(algo).train(&mut net, &data);
        assert_eq!(report.accuracy, 1.0, "{report:?}");
    }

    #[test]
    fn xor_is_learnable_with_hidden_layer() {
        // XOR of bits 0 and 1 — not linearly separable; exercises the
        // hidden layer for real.
        let rows: Vec<(f64, f64, usize)> =
            vec![(0.0, 0.0, 1), (0.0, 1.0, 0), (1.0, 0.0, 0), (1.0, 1.0, 1)];
        let mut data = Vec::new();
        let mut targets = Vec::new();
        for &(a, b, c) in &rows {
            data.extend_from_slice(&[a, b, 1.0]);
            targets.push(c);
        }
        let data = EncodedDataset::from_parts(data, 3, targets, 2);
        // Try a handful of seeds; XOR has local minima and the penalty
        // term biases small nets toward constant outputs.
        let solved = (0..16).any(|seed| {
            let mut net = Mlp::random(3, 4, 2, seed);
            let report = Trainer::default().train(&mut net, &data);
            report.accuracy == 1.0
        });
        assert!(solved, "no seed solved XOR");
    }

    #[test]
    fn training_respects_pruned_links() {
        let data = separable(20);
        let mut net = Mlp::random(3, 2, 2, 9);
        net.prune(crate::LinkId::InputHidden {
            hidden: 0,
            input: 1,
        });
        let _ = Trainer::default().train(&mut net, &data);
        assert_eq!(
            net.weight(crate::LinkId::InputHidden {
                hidden: 0,
                input: 1
            }),
            0.0
        );
        assert!(!net.is_active(crate::LinkId::InputHidden {
            hidden: 0,
            input: 1
        }));
    }

    #[test]
    fn penalty_shrinks_weights() {
        let data = separable(40);
        let mut plain = Mlp::random(3, 3, 2, 21);
        let mut penalized = plain.clone();
        Trainer::default()
            .with_penalty(Penalty::none())
            .train(&mut plain, &data);
        Trainer::default()
            .with_penalty(Penalty {
                eps1: 0.5,
                eps2: 1e-3,
                beta: 10.0,
            })
            .train(&mut penalized, &data);
        let norm = |n: &Mlp| -> f64 {
            n.w()
                .as_slice()
                .iter()
                .chain(n.v().as_slice())
                .map(|w| w * w)
                .sum()
        };
        assert!(
            norm(&penalized) < norm(&plain),
            "penalty should shrink weights: {} vs {}",
            norm(&penalized),
            norm(&plain)
        );
    }

    #[test]
    fn deterministic_training() {
        let data = separable(24);
        let mut a = Mlp::random(3, 3, 2, 3);
        let mut b = Mlp::random(3, 3, 2, 3);
        let ra = Trainer::default().train(&mut a, &data);
        let rb = Trainer::default().train(&mut b, &data);
        assert_eq!(a, b);
        assert_eq!(ra, rb);
    }
}
