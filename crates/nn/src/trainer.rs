//! High-level training entry point.

use nr_encode::EncodedDataset;
use nr_opt::{Bfgs, BfgsState, ConjugateGradient, GradientDescent, Lbfgs, LbfgsState, Optimizer};
use serde::{Deserialize, Serialize};

use crate::{CrossEntropyObjective, LinkId, Mlp, Penalty};

/// Which minimizer drives training.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TrainingAlgorithm {
    /// BFGS quasi-Newton (the paper's choice; superlinear convergence).
    Bfgs(Bfgs),
    /// Limited-memory BFGS (for larger networks).
    Lbfgs(Lbfgs),
    /// Polak–Ribière+ conjugate gradient (matrix-free).
    ConjugateGradient(ConjugateGradient),
    /// Gradient descent with momentum (classic backpropagation; ablation).
    GradientDescent(GradientDescent),
}

impl Default for TrainingAlgorithm {
    fn default() -> Self {
        TrainingAlgorithm::Bfgs(Bfgs::default().with_max_iters(300))
    }
}

/// Outcome of one training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Final objective value (cross entropy + penalty).
    pub loss: f64,
    /// Gradient infinity norm at the final weights.
    pub grad_norm: f64,
    /// Optimizer iterations.
    pub iterations: usize,
    /// Objective evaluations.
    pub evaluations: usize,
    /// Whether the gradient tolerance was reached ("a local minimum … has
    /// been reached", §2.1).
    pub converged: bool,
    /// Training-set accuracy (argmax rule) of the trained network.
    pub accuracy: f64,
}

/// Trains a network in place: minimizes eq. 2 + eq. 3 over the active
/// weights and writes the optimum back.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Trainer {
    /// The minimizer.
    pub algorithm: TrainingAlgorithm,
    /// The weight-decay penalty (eq. 3).
    pub penalty: Penalty,
}

impl Trainer {
    /// Trainer with the given algorithm and the default penalty.
    pub fn new(algorithm: TrainingAlgorithm) -> Self {
        Trainer {
            algorithm,
            penalty: Penalty::default(),
        }
    }

    /// Replaces the penalty.
    pub fn with_penalty(mut self, penalty: Penalty) -> Self {
        self.penalty = penalty;
        self
    }

    /// Trains `net` on `data`, mutating its weights; returns a report.
    pub fn train(&self, net: &mut Mlp, data: &EncodedDataset) -> TrainReport {
        let x0 = net.flatten_active();
        let result = {
            let objective = CrossEntropyObjective::new(net, data, self.penalty);
            match &self.algorithm {
                TrainingAlgorithm::Bfgs(b) => b.minimize(&objective, x0),
                TrainingAlgorithm::Lbfgs(l) => l.minimize(&objective, x0),
                TrainingAlgorithm::ConjugateGradient(c) => c.minimize(&objective, x0),
                TrainingAlgorithm::GradientDescent(g) => g.minimize(&objective, x0),
            }
        };
        net.set_active(&result.x);
        TrainReport {
            loss: result.value,
            grad_norm: result.grad_norm,
            iterations: result.iterations,
            evaluations: result.evaluations,
            converged: result.converged,
            accuracy: net.accuracy(data),
        }
    }

    /// Warm-started, budgeted retraining — the incremental pruning loop's
    /// workhorse. Runs at most `budget` optimizer iterations, resuming the
    /// curvature carried in `state` from the previous call (dense-BFGS
    /// inverse Hessian / L-BFGS pair history) instead of rebuilding it
    /// from the identity; when pruning removed links since the last call,
    /// the state is first projected onto the surviving coordinates.
    ///
    /// Algorithms without curvature state (conjugate gradient, gradient
    /// descent) simply run with the reduced iteration budget. The first
    /// call (or any call after [`WarmState::reset`]) is a cold bounded
    /// run.
    pub fn train_warm(
        &self,
        net: &mut Mlp,
        data: &EncodedDataset,
        state: &mut WarmState,
        budget: usize,
    ) -> TrainReport {
        let links = net.active_links();
        let keep = project_mask(&state.links, &links);
        let x0 = net.flatten_active();
        let result = {
            let objective = CrossEntropyObjective::new(net, data, self.penalty);
            match &self.algorithm {
                TrainingAlgorithm::Bfgs(b) => {
                    if let (OptWarm::Bfgs(s), Some(k)) = (&mut state.opt, keep.as_deref()) {
                        s.retain(k);
                    }
                    if !matches!(&state.opt, OptWarm::Bfgs(s) if s.dim() == links.len()) {
                        state.opt = OptWarm::Bfgs(BfgsState::identity(links.len()));
                    }
                    let OptWarm::Bfgs(s) = &mut state.opt else {
                        unreachable!("state was just normalized to Bfgs");
                    };
                    b.clone().with_max_iters(budget).resume(&objective, x0, s)
                }
                TrainingAlgorithm::Lbfgs(l) => {
                    if let (OptWarm::Lbfgs(s), Some(k)) = (&mut state.opt, keep.as_deref()) {
                        s.retain(k);
                    }
                    if !matches!(&state.opt, OptWarm::Lbfgs(s)
                        if s.dim().is_none() || s.dim() == Some(links.len()))
                    {
                        state.opt = OptWarm::Lbfgs(LbfgsState::new());
                    }
                    let OptWarm::Lbfgs(s) = &mut state.opt else {
                        unreachable!("state was just normalized to Lbfgs");
                    };
                    l.clone().with_max_iters(budget).resume(&objective, x0, s)
                }
                TrainingAlgorithm::ConjugateGradient(c) => {
                    c.clone().with_max_iters(budget).minimize(&objective, x0)
                }
                TrainingAlgorithm::GradientDescent(g) => {
                    (*g).with_max_iters(budget).minimize(&objective, x0)
                }
            }
        };
        state.links = links;
        net.set_active(&result.x);
        TrainReport {
            loss: result.value,
            grad_norm: result.grad_norm,
            iterations: result.iterations,
            evaluations: result.evaluations,
            converged: result.converged,
            accuracy: net.accuracy(data),
        }
    }
}

/// Optimizer state carried across [`Trainer::train_warm`] calls, keyed to
/// the network's active links so it can be projected when pruning shrinks
/// the parameter vector between calls.
#[derive(Debug, Clone, Default)]
pub struct WarmState {
    /// Canonical active links the carried state refers to.
    links: Vec<LinkId>,
    /// The algorithm-specific curvature.
    opt: OptWarm,
}

#[derive(Debug, Clone, Default)]
enum OptWarm {
    /// Nothing carried yet (or state was invalidated).
    #[default]
    Empty,
    /// Dense-BFGS inverse Hessian.
    Bfgs(BfgsState),
    /// L-BFGS curvature pairs.
    Lbfgs(LbfgsState),
}

impl WarmState {
    /// Fresh, empty state: the first `train_warm` call is a cold run.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops the carried curvature (the next warm call starts cold). Call
    /// after a rollback restored weights the state no longer describes.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

/// `keep[k]` = whether `old[k]` survives in `new`, for `new ⊆ old` (both
/// in canonical link order). `None` when there is no usable carried state
/// (empty `old`, or `new` is not a subset — e.g. links were re-activated
/// by a rollback).
fn project_mask(old: &[LinkId], new: &[LinkId]) -> Option<Vec<bool>> {
    if old.is_empty() {
        return None;
    }
    let mut keep = vec![false; old.len()];
    let mut oi = 0;
    for n in new {
        while oi < old.len() && old[oi] != *n {
            oi += 1;
        }
        if oi == old.len() {
            return None;
        }
        keep[oi] = true;
        oi += 1;
    }
    Some(keep)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Linearly separable toy problem: class = bit 0.
    fn separable(n: usize) -> EncodedDataset {
        let mut data = Vec::new();
        let mut targets = Vec::new();
        for i in 0..n {
            let b0 = (i % 2) as f64;
            let b1 = ((i / 2) % 2) as f64;
            data.extend_from_slice(&[b0, b1, 1.0]);
            targets.push(if b0 == 1.0 { 0 } else { 1 });
        }
        EncodedDataset::from_parts(data, 3, targets, 2)
    }

    #[test]
    fn bfgs_learns_separable_data() {
        let data = separable(40);
        let mut net = Mlp::random(3, 3, 2, 5);
        let report = Trainer::default().train(&mut net, &data);
        assert_eq!(report.accuracy, 1.0, "{report:?}");
        assert!(report.loss < 10.0);
    }

    #[test]
    fn lbfgs_learns_separable_data() {
        let data = separable(40);
        let mut net = Mlp::random(3, 3, 2, 5);
        let algo = TrainingAlgorithm::Lbfgs(nr_opt::Lbfgs::default().with_max_iters(300));
        let report = Trainer::new(algo).train(&mut net, &data);
        assert_eq!(report.accuracy, 1.0, "{report:?}");
    }

    #[test]
    fn conjugate_gradient_learns_separable_data() {
        let data = separable(40);
        let mut net = Mlp::random(3, 3, 2, 5);
        let algo = TrainingAlgorithm::ConjugateGradient(
            nr_opt::ConjugateGradient::default().with_max_iters(500),
        );
        let report = Trainer::new(algo).train(&mut net, &data);
        assert_eq!(report.accuracy, 1.0, "{report:?}");
    }

    #[test]
    fn gradient_descent_learns_separable_data() {
        let data = separable(40);
        let mut net = Mlp::random(3, 3, 2, 5);
        let algo = TrainingAlgorithm::GradientDescent(
            GradientDescent::default()
                .with_learning_rate(0.05)
                .with_max_iters(3000),
        );
        let report = Trainer::new(algo).train(&mut net, &data);
        assert_eq!(report.accuracy, 1.0, "{report:?}");
    }

    #[test]
    fn xor_is_learnable_with_hidden_layer() {
        // XOR of bits 0 and 1 — not linearly separable; exercises the
        // hidden layer for real.
        let rows: Vec<(f64, f64, usize)> =
            vec![(0.0, 0.0, 1), (0.0, 1.0, 0), (1.0, 0.0, 0), (1.0, 1.0, 1)];
        let mut data = Vec::new();
        let mut targets = Vec::new();
        for &(a, b, c) in &rows {
            data.extend_from_slice(&[a, b, 1.0]);
            targets.push(c);
        }
        let data = EncodedDataset::from_parts(data, 3, targets, 2);
        // Try a handful of seeds; XOR has local minima and the penalty
        // term biases small nets toward constant outputs.
        let solved = (0..16).any(|seed| {
            let mut net = Mlp::random(3, 4, 2, seed);
            let report = Trainer::default().train(&mut net, &data);
            report.accuracy == 1.0
        });
        assert!(solved, "no seed solved XOR");
    }

    #[test]
    fn training_respects_pruned_links() {
        let data = separable(20);
        let mut net = Mlp::random(3, 2, 2, 9);
        net.prune(crate::LinkId::InputHidden {
            hidden: 0,
            input: 1,
        });
        let _ = Trainer::default().train(&mut net, &data);
        assert_eq!(
            net.weight(crate::LinkId::InputHidden {
                hidden: 0,
                input: 1
            }),
            0.0
        );
        assert!(!net.is_active(crate::LinkId::InputHidden {
            hidden: 0,
            input: 1
        }));
    }

    #[test]
    fn penalty_shrinks_weights() {
        let data = separable(40);
        let mut plain = Mlp::random(3, 3, 2, 21);
        let mut penalized = plain.clone();
        Trainer::default()
            .with_penalty(Penalty::none())
            .train(&mut plain, &data);
        Trainer::default()
            .with_penalty(Penalty {
                eps1: 0.5,
                eps2: 1e-3,
                beta: 10.0,
            })
            .train(&mut penalized, &data);
        let norm = |n: &Mlp| -> f64 {
            n.w()
                .as_slice()
                .iter()
                .chain(n.v().as_slice())
                .map(|w| w * w)
                .sum()
        };
        assert!(
            norm(&penalized) < norm(&plain),
            "penalty should shrink weights: {} vs {}",
            norm(&penalized),
            norm(&plain)
        );
    }

    #[test]
    fn deterministic_training() {
        let data = separable(24);
        let mut a = Mlp::random(3, 3, 2, 3);
        let mut b = Mlp::random(3, 3, 2, 3);
        let ra = Trainer::default().train(&mut a, &data);
        let rb = Trainer::default().train(&mut b, &data);
        assert_eq!(a, b);
        assert_eq!(ra, rb);
    }

    #[test]
    fn warm_training_learns_in_stages() {
        let data = separable(40);
        let mut net = Mlp::random(3, 3, 2, 5);
        let trainer = Trainer::default();
        let mut state = WarmState::new();
        let mut report = trainer.train_warm(&mut net, &data, &mut state, 15);
        for _ in 0..30 {
            if report.converged {
                break;
            }
            report = trainer.train_warm(&mut net, &data, &mut state, 15);
        }
        assert_eq!(report.accuracy, 1.0, "{report:?}");
        assert!(report.iterations <= 15);
    }

    #[test]
    fn warm_training_survives_pruning_between_calls() {
        let data = separable(40);
        let mut net = Mlp::random(3, 3, 2, 5);
        let trainer = Trainer::default();
        let mut state = WarmState::new();
        trainer.train_warm(&mut net, &data, &mut state, 25);
        // Remove a link: the carried curvature must be projected, not
        // poison the next leg.
        net.prune(crate::LinkId::InputHidden {
            hidden: 1,
            input: 1,
        });
        let mut report = trainer.train_warm(&mut net, &data, &mut state, 25);
        for _ in 0..20 {
            if report.converged {
                break;
            }
            report = trainer.train_warm(&mut net, &data, &mut state, 25);
        }
        assert_eq!(report.accuracy, 1.0, "{report:?}");
        // Pruned link stayed pruned through warm retraining.
        assert_eq!(
            net.weight(crate::LinkId::InputHidden {
                hidden: 1,
                input: 1
            }),
            0.0
        );
    }

    #[test]
    fn warm_training_works_for_every_algorithm() {
        let data = separable(40);
        let algorithms = [
            TrainingAlgorithm::Bfgs(nr_opt::Bfgs::default()),
            TrainingAlgorithm::Lbfgs(nr_opt::Lbfgs::default()),
            TrainingAlgorithm::ConjugateGradient(nr_opt::ConjugateGradient::default()),
            TrainingAlgorithm::GradientDescent(GradientDescent::default().with_learning_rate(0.05)),
        ];
        for algo in algorithms {
            let trainer = Trainer::new(algo);
            let mut net = Mlp::random(3, 3, 2, 5);
            let mut state = WarmState::new();
            for _ in 0..200 {
                let report = trainer.train_warm(&mut net, &data, &mut state, 30);
                if report.accuracy == 1.0 {
                    break;
                }
            }
            assert_eq!(
                net.accuracy(&data),
                1.0,
                "warm staging failed for {:?}",
                trainer.algorithm
            );
        }
    }

    #[test]
    fn warm_state_reset_starts_cold() {
        let data = separable(24);
        let mut state = WarmState::new();
        let mut a = Mlp::random(3, 3, 2, 3);
        Trainer::default().train_warm(&mut a, &data, &mut state, 20);
        state.reset();
        // After reset, a warm call from the same start equals a fresh one.
        let mut b = Mlp::random(3, 3, 2, 3);
        let mut fresh = WarmState::new();
        let mut c = Mlp::random(3, 3, 2, 3);
        let rb = Trainer::default().train_warm(&mut b, &data, &mut state, 20);
        let rc = Trainer::default().train_warm(&mut c, &data, &mut fresh, 20);
        assert_eq!(b, c);
        assert_eq!(rb, rc);
    }

    #[test]
    fn project_mask_subsets() {
        let l = |input: usize| crate::LinkId::InputHidden { hidden: 0, input };
        let old = vec![l(0), l(1), l(2), l(3)];
        assert_eq!(
            project_mask(&old, &[l(0), l(2)]),
            Some(vec![true, false, true, false])
        );
        assert_eq!(
            project_mask(&old, &old.clone()),
            Some(vec![true, true, true, true])
        );
        // Not a subset: a link unknown to the old state.
        assert_eq!(project_mask(&old, &[l(7)]), None);
        // No carried state at all.
        assert_eq!(project_mask(&[], &[l(0)]), None);
    }
}
