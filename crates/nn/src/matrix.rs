//! A minimal dense row-major matrix for weight storage.

use serde::{Deserialize, Serialize};

/// Dense row-major `f64` matrix.
///
/// Deliberately tiny: the networks here have at most a few hundred weights,
/// so this is about clear indexing (`m[(row, col)]`), not BLAS performance.
/// Hot loops borrow whole rows via [`Matrix::row`] to keep bounds checks out
/// of inner loops.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Flat view of all entries (row-major).
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat view of all entries (row-major).
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_roundtrip() {
        let mut m = Matrix::zeros(2, 3);
        m[(1, 2)] = 5.0;
        assert_eq!(m[(1, 2)], 5.0);
        assert_eq!(m[(0, 0)], 0.0);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
    }

    #[test]
    fn rows_are_contiguous() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f64);
        assert_eq!(m.row(0), &[0.0, 1.0, 2.0]);
        assert_eq!(m.row(1), &[3.0, 4.0, 5.0]);
        assert_eq!(m.as_slice().len(), 6);
    }

    #[test]
    fn from_fn_order() {
        let m = Matrix::from_fn(3, 1, |r, _| r as f64);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 2.0]);
    }
}
