//! Dense row-major matrices and the batch matmul kernels built on them.
//!
//! Originally this type only stored weights for per-tuple forward passes;
//! it now also carries the workspace's batched hot path: [`gemm_nt`]
//! (`A·Bᵀ`, the shape of `inputs · weightsᵀ`), [`gemm_tn_acc`] (`Aᵀ·B`,
//! the shape of the delta-rule weight gradients) and [`gemm_nn`] (`A·B`,
//! the shape of back-propagating output deltas), plus in-place
//! [`Matrix::axpy`]/[`Matrix::scale`] for reductions.
//!
//! Two properties the rest of the workspace relies on:
//!
//! * **Bit-compatibility with the per-row path.** Every kernel accumulates
//!   each output element in ascending index order — the same order as the
//!   scalar `z += w·x` loops in [`crate::Mlp::forward_into`] — so batched
//!   and per-row results are bit-identical, not merely close. Blocking is
//!   done across *independent* output columns (four parallel accumulator
//!   chains), which changes instruction-level parallelism but never the
//!   order of any single floating-point reduction.
//! * **Auto-vectorizable inner loops.** The kernels index fixed-length
//!   row slices so the compiler can keep bounds checks out of the inner
//!   loops and vectorize the four-column blocks.

use serde::{Deserialize, Serialize};

/// Dense row-major `f64` matrix.
///
/// Hot loops borrow whole rows via [`Matrix::row`] to keep bounds checks out
/// of inner loops; batch callers go through the `gemm_*` kernels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Wraps an existing row-major buffer (`data.len()` must be
    /// `rows * cols`).
    pub fn from_raw(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer does not match shape");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Flat view of all entries (row-major).
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat view of all entries (row-major).
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Sets every entry to zero (reusing the allocation).
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// `self · other` (shapes `m×k · k×n → m×n`).
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        gemm_nn(
            self.rows,
            other.cols,
            self.cols,
            &self.data,
            &other.data,
            &mut out.data,
        );
        out
    }

    /// `self · otherᵀ` (shapes `m×k · (n×k)ᵀ → m×n`).
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_nt shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.rows);
        gemm_nt(
            self.rows,
            other.rows,
            self.cols,
            &self.data,
            &other.data,
            &mut out.data,
        );
        out
    }

    /// `selfᵀ · other` (shapes `(k×m)ᵀ · k×n → m×n`).
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "matmul_tn shape mismatch");
        let mut out = Matrix::zeros(self.cols, other.cols);
        gemm_tn_acc(
            self.cols,
            other.cols,
            self.rows,
            &self.data,
            &other.data,
            &mut out.data,
        );
        out
    }

    /// `self += alpha · other`, in place.
    pub fn axpy(&mut self, alpha: f64, other: &Matrix) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "axpy shape mismatch"
        );
        axpy(alpha, &other.data, &mut self.data);
    }

    /// `self *= alpha`, in place.
    pub fn scale(&mut self, alpha: f64) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

/// `out += alpha · x` over flat slices.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], out: &mut [f64]) {
    debug_assert_eq!(x.len(), out.len());
    for (o, &v) in out.iter_mut().zip(x) {
        *o += alpha * v;
    }
}

/// `out = A · Bᵀ` over raw row-major buffers: `A` is `m×k`, `B` is `n×k`,
/// `out` is `m×n`, all row-major.
///
/// This is the batch forward-pass shape (`inputs · weightsᵀ`): both
/// operands are traversed along contiguous rows, so the inner loop is pure
/// streaming. Output columns are processed in blocks of four independent
/// accumulator chains; each individual output is still accumulated in
/// ascending `k` order, keeping the result bit-identical to a scalar
/// `z += a·b` loop.
pub fn gemm_nt(m: usize, n: usize, k: usize, a: &[f64], b: &[f64], out: &mut [f64]) {
    assert_eq!(a.len(), m * k, "A shape mismatch");
    assert_eq!(b.len(), n * k, "B shape mismatch");
    assert_eq!(out.len(), m * n, "output shape mismatch");
    for i in 0..m {
        let ar = &a[i * k..(i + 1) * k];
        let or = &mut out[i * n..(i + 1) * n];
        let mut j = 0;
        // Blocks of four output columns: four independent dot-product
        // chains over the same streamed `A` row.
        while j + 4 <= n {
            let b0 = &b[j * k..(j + 1) * k];
            let b1 = &b[(j + 1) * k..(j + 2) * k];
            let b2 = &b[(j + 2) * k..(j + 3) * k];
            let b3 = &b[(j + 3) * k..(j + 4) * k];
            let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
            for t in 0..k {
                let x = ar[t];
                s0 += x * b0[t];
                s1 += x * b1[t];
                s2 += x * b2[t];
                s3 += x * b3[t];
            }
            or[j] = s0;
            or[j + 1] = s1;
            or[j + 2] = s2;
            or[j + 3] = s3;
            j += 4;
        }
        if j + 2 <= n {
            let b0 = &b[j * k..(j + 1) * k];
            let b1 = &b[(j + 1) * k..(j + 2) * k];
            let (mut s0, mut s1) = (0.0, 0.0);
            for t in 0..k {
                let x = ar[t];
                s0 += x * b0[t];
                s1 += x * b1[t];
            }
            or[j] = s0;
            or[j + 1] = s1;
            j += 2;
        }
        if j < n {
            let b0 = &b[j * k..(j + 1) * k];
            let mut s0 = 0.0;
            for t in 0..k {
                s0 += ar[t] * b0[t];
            }
            or[j] = s0;
        }
    }
}

/// `out += Aᵀ · B` over raw row-major buffers: `A` is `k×m`, `B` is `k×n`,
/// `out` is `m×n`, all row-major. Accumulates into `out`.
///
/// This is the delta-rule gradient shape (`deltasᵀ · activations`): the
/// `k` dimension (batch rows) is the outer loop, so each step is a rank-1
/// update streaming one row of `A` and one row of `B` — the inner axpy
/// has no loop-carried dependency and vectorizes cleanly. Accumulation
/// per output element is in ascending `k` order, matching a per-row
/// `grad += delta·activation` loop bit for bit.
pub fn gemm_tn_acc(m: usize, n: usize, k: usize, a: &[f64], b: &[f64], out: &mut [f64]) {
    assert_eq!(a.len(), k * m, "A shape mismatch");
    assert_eq!(b.len(), k * n, "B shape mismatch");
    assert_eq!(out.len(), m * n, "output shape mismatch");
    for r in 0..k {
        let ar = &a[r * m..(r + 1) * m];
        let br = &b[r * n..(r + 1) * n];
        for i in 0..m {
            let av = ar[i];
            // Pruned links and saturated deltas produce exact zeros; skip
            // whole rank-1 rows for them (adding ±0.0 would be a no-op).
            if av != 0.0 {
                axpy(av, br, &mut out[i * n..(i + 1) * n]);
            }
        }
    }
}

/// `out = A · B` over raw row-major buffers: `A` is `m×k`, `B` is `k×n`,
/// `out` is `m×n`, all row-major.
///
/// Used to back-propagate output deltas through the hidden→output weights
/// (`D · V`). Row-of-`B` axpy inner loop; per-element accumulation in
/// ascending `k` order, matching the per-row `Σ_p δ_p·v` loop.
pub fn gemm_nn(m: usize, n: usize, k: usize, a: &[f64], b: &[f64], out: &mut [f64]) {
    assert_eq!(a.len(), m * k, "A shape mismatch");
    assert_eq!(b.len(), k * n, "B shape mismatch");
    assert_eq!(out.len(), m * n, "output shape mismatch");
    for i in 0..m {
        let ar = &a[i * k..(i + 1) * k];
        let or = &mut out[i * n..(i + 1) * n];
        or.fill(0.0);
        for (l, &av) in ar.iter().enumerate() {
            if av != 0.0 {
                axpy(av, &b[l * n..(l + 1) * n], or);
            }
        }
    }
}

/// `out = S·Bᵀ` where `S` is an `m×k` strictly-0/1 matrix given as per-row
/// ascending set-bit column indices (`S` row `i` = `indices[offsets[i]..
/// offsets[i+1]]`). `B` is `n×k` row-major, `out` is `m×n`.
///
/// The binary input coding makes this the natural forward-pass kernel: a
/// row's dot product with a weight row is a gather-sum over its set bits,
/// a fraction of the dense multiply-adds. Because the indices ascend and
/// adding a `w·0.0` term to a non-negative-zero accumulator never changes
/// its bits, the result is bit-identical to the dense [`gemm_nt`].
pub fn gemm_bits_nt(
    m: usize,
    n: usize,
    k: usize,
    indices: &[u32],
    offsets: &[usize],
    b: &[f64],
    out: &mut [f64],
) {
    assert_eq!(offsets.len(), m + 1, "need one offset per row plus end");
    assert_eq!(b.len(), n * k, "B shape mismatch");
    assert_eq!(out.len(), m * n, "output shape mismatch");
    for i in 0..m {
        let bits = &indices[offsets[i]..offsets[i + 1]];
        let or = &mut out[i * n..(i + 1) * n];
        let mut j = 0;
        while j + 4 <= n {
            let b0 = &b[j * k..(j + 1) * k];
            let b1 = &b[(j + 1) * k..(j + 2) * k];
            let b2 = &b[(j + 2) * k..(j + 3) * k];
            let b3 = &b[(j + 3) * k..(j + 4) * k];
            let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
            for &l in bits {
                let l = l as usize;
                s0 += b0[l];
                s1 += b1[l];
                s2 += b2[l];
                s3 += b3[l];
            }
            or[j] = s0;
            or[j + 1] = s1;
            or[j + 2] = s2;
            or[j + 3] = s3;
            j += 4;
        }
        if j + 2 <= n {
            let b0 = &b[j * k..(j + 1) * k];
            let b1 = &b[(j + 1) * k..(j + 2) * k];
            let (mut s0, mut s1) = (0.0, 0.0);
            for &l in bits {
                let l = l as usize;
                s0 += b0[l];
                s1 += b1[l];
            }
            or[j] = s0;
            or[j + 1] = s1;
            j += 2;
        }
        if j < n {
            let b0 = &b[j * k..(j + 1) * k];
            let mut s0 = 0.0;
            for &l in bits {
                s0 += b0[l as usize];
            }
            or[j] = s0;
        }
    }
}

/// `out += Aᵀ·S` where `A` is `k×m` row-major and `S` is a `k×n`
/// strictly-0/1 matrix given as per-row ascending set-bit indices.
///
/// This is the input-side weight-gradient shape (`deltasᵀ · inputs`) with
/// binary inputs: each nonzero delta scatters itself onto its row's set
/// bits (`δ·1.0 = δ` exactly), reproducing a dense accumulation that skips
/// zero inputs bit for bit.
pub fn gemm_tn_bits_acc(
    m: usize,
    n: usize,
    k: usize,
    a: &[f64],
    indices: &[u32],
    offsets: &[usize],
    out: &mut [f64],
) {
    assert_eq!(a.len(), k * m, "A shape mismatch");
    assert_eq!(offsets.len(), k + 1, "need one offset per row plus end");
    assert_eq!(out.len(), m * n, "output shape mismatch");
    for r in 0..k {
        let ar = &a[r * m..(r + 1) * m];
        let bits = &indices[offsets[r]..offsets[r + 1]];
        for i in 0..m {
            let av = ar[i];
            if av != 0.0 {
                let or = &mut out[i * n..(i + 1) * n];
                for &l in bits {
                    or[l as usize] += av;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_roundtrip() {
        let mut m = Matrix::zeros(2, 3);
        m[(1, 2)] = 5.0;
        assert_eq!(m[(1, 2)], 5.0);
        assert_eq!(m[(0, 0)], 0.0);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
    }

    #[test]
    fn rows_are_contiguous() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f64);
        assert_eq!(m.row(0), &[0.0, 1.0, 2.0]);
        assert_eq!(m.row(1), &[3.0, 4.0, 5.0]);
        assert_eq!(m.as_slice().len(), 6);
    }

    #[test]
    fn from_fn_order() {
        let m = Matrix::from_fn(3, 1, |r, _| r as f64);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 2.0]);
    }

    #[test]
    fn from_raw_roundtrip() {
        let m = Matrix::from_raw(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m[(1, 0)], 3.0);
    }

    #[test]
    #[should_panic(expected = "buffer does not match shape")]
    fn from_raw_rejects_bad_shape() {
        let _ = Matrix::from_raw(2, 2, vec![1.0; 3]);
    }

    /// Reference implementation: naive triple loop.
    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        Matrix::from_fn(a.rows(), b.cols(), |i, j| {
            (0..a.cols()).map(|l| a[(i, l)] * b[(l, j)]).sum()
        })
    }

    fn arbitrary(rows: usize, cols: usize, seed: u64) -> Matrix {
        Matrix::from_fn(rows, cols, |r, c| {
            let x = (r * 31 + c * 7 + seed as usize) as f64;
            (x * 0.37).sin()
        })
    }

    #[test]
    fn matmul_matches_naive() {
        // Dimensions straddling the 4/2/1-column block boundaries.
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 4), (7, 87, 6), (4, 3, 9), (2, 8, 2)] {
            let a = arbitrary(m, k, 1);
            let b = arbitrary(k, n, 2);
            let got = a.matmul(&b);
            let want = naive_matmul(&a, &b);
            for (g, w) in got.as_slice().iter().zip(want.as_slice()) {
                assert!((g - w).abs() < 1e-12, "{g} vs {w}");
            }
        }
    }

    #[test]
    fn matmul_nt_matches_naive() {
        for &(m, k, n) in &[(1, 1, 1), (5, 87, 4), (3, 6, 7), (2, 4, 2), (6, 5, 3)] {
            let a = arbitrary(m, k, 3);
            let b = arbitrary(n, k, 4);
            let got = a.matmul_nt(&b);
            // A·Bᵀ element (i, j) = dot(A row i, B row j).
            let want = Matrix::from_fn(m, n, |i, j| {
                a.row(i).iter().zip(b.row(j)).map(|(x, y)| x * y).sum()
            });
            for (g, w) in got.as_slice().iter().zip(want.as_slice()) {
                assert!((g - w).abs() < 1e-12, "{g} vs {w}");
            }
        }
    }

    #[test]
    fn matmul_nt_is_bit_identical_to_scalar_loop() {
        // The per-row forward pass accumulates z += w·x in ascending index
        // order; the blocked kernel must reproduce those exact bits.
        let a = arbitrary(9, 87, 5);
        let b = arbitrary(4, 87, 6);
        let got = a.matmul_nt(&b);
        for i in 0..9 {
            for j in 0..4 {
                let mut z = 0.0;
                for (x, y) in a.row(i).iter().zip(b.row(j)) {
                    z += x * y;
                }
                assert_eq!(got[(i, j)], z, "element ({i}, {j}) differs in bits");
            }
        }
    }

    #[test]
    fn matmul_tn_matches_naive() {
        for &(k, m, n) in &[(1, 1, 1), (10, 4, 3), (5, 2, 6), (7, 3, 2)] {
            let a = arbitrary(k, m, 7);
            let b = arbitrary(k, n, 8);
            let got = a.matmul_tn(&b);
            let want = Matrix::from_fn(m, n, |i, j| (0..k).map(|r| a[(r, i)] * b[(r, j)]).sum());
            for (g, w) in got.as_slice().iter().zip(want.as_slice()) {
                assert!((g - w).abs() < 1e-12, "{g} vs {w}");
            }
        }
    }

    #[test]
    fn axpy_and_scale() {
        let mut m = Matrix::from_fn(2, 2, |r, c| (r + c) as f64);
        let other = Matrix::from_fn(2, 2, |_, _| 1.0);
        m.axpy(2.0, &other);
        assert_eq!(m.as_slice(), &[2.0, 3.0, 3.0, 4.0]);
        m.scale(0.5);
        assert_eq!(m.as_slice(), &[1.0, 1.5, 1.5, 2.0]);
        m.fill_zero();
        assert_eq!(m.as_slice(), &[0.0; 4]);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    /// Binary matrix fixture: rows of 0/1 plus the CSR layout.
    fn binary_fixture(m: usize, k: usize) -> (Vec<f64>, Vec<u32>, Vec<usize>) {
        let mut dense = vec![0.0; m * k];
        let mut indices = Vec::new();
        let mut offsets = vec![0];
        for i in 0..m {
            for c in 0..k {
                if (i * 7 + c * 3) % 4 == 0 {
                    dense[i * k + c] = 1.0;
                    indices.push(c as u32);
                }
            }
            offsets.push(indices.len());
        }
        (dense, indices, offsets)
    }

    #[test]
    fn gemm_bits_nt_is_bit_identical_to_dense() {
        for &(m, k, n) in &[(5, 87, 4), (3, 10, 3), (4, 6, 7), (2, 5, 1), (1, 4, 2)] {
            let (dense, indices, offsets) = binary_fixture(m, k);
            let b = arbitrary(n, k, 9);
            let mut want = vec![0.0; m * n];
            gemm_nt(m, n, k, &dense, b.as_slice(), &mut want);
            let mut got = vec![0.0; m * n];
            gemm_bits_nt(m, n, k, &indices, &offsets, b.as_slice(), &mut got);
            assert_eq!(got, want, "m={m} k={k} n={n}");
        }
    }

    #[test]
    fn gemm_tn_bits_acc_is_bit_identical_to_dense() {
        for &(k, m, n) in &[(9, 4, 87), (5, 2, 6), (3, 3, 5), (1, 1, 4)] {
            let (dense, indices, offsets) = binary_fixture(k, n);
            let a = arbitrary(k, m, 11);
            let mut want = vec![0.0; m * n];
            gemm_tn_acc(m, n, k, a.as_slice(), &dense, &mut want);
            let mut got = vec![0.0; m * n];
            gemm_tn_bits_acc(m, n, k, a.as_slice(), &indices, &offsets, &mut got);
            assert_eq!(got, want, "k={k} m={m} n={n}");
        }
    }
}
