//! Textual rendering of a pruned network (Figure 3 of the paper).
//!
//! The paper draws the pruned Function-2 network with its 17 surviving
//! links, marking positive and negative weights. This module produces the
//! equivalent ASCII description: per hidden node, the surviving input
//! links with their signs and magnitudes, then the hidden→output links —
//! exactly the information a reader needs to trace RX by hand.

use crate::{LinkId, Mlp};

/// A per-network structural summary.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkSummary {
    /// Total links (active or not).
    pub total_links: usize,
    /// Surviving links.
    pub active_links: usize,
    /// Live hidden nodes.
    pub live_hidden: Vec<usize>,
    /// Inputs still connected.
    pub used_inputs: Vec<usize>,
}

/// Computes the structural summary of a network.
pub fn summarize(net: &Mlp) -> NetworkSummary {
    NetworkSummary {
        total_links: net.n_links(),
        active_links: net.n_active(),
        live_hidden: net.live_hidden(),
        used_inputs: net.used_inputs(),
    }
}

/// Renders the pruned network Figure-3 style. `input_name` maps an input
/// index to a display name (pass the encoder's `I1…I87` naming, or column
/// names for generic encoders).
pub fn describe(net: &Mlp, input_name: impl Fn(usize) -> String) -> String {
    let mut out = String::new();
    let summary = summarize(net);
    out.push_str(&format!(
        "network: {} of {} links active, hidden nodes {:?}, {} inputs used\n",
        summary.active_links,
        summary.total_links,
        summary.live_hidden,
        summary.used_inputs.len(),
    ));
    for m in 0..net.n_hidden() {
        let inputs = net.hidden_inputs(m);
        let outputs = net.hidden_outputs(m);
        if inputs.is_empty() && outputs.is_empty() {
            continue;
        }
        let status = if net.hidden_is_dead(m) { " (dead)" } else { "" };
        out.push_str(&format!("hidden node {m}{status}:\n"));
        for l in inputs {
            let w = net.weight(LinkId::InputHidden {
                hidden: m,
                input: l,
            });
            out.push_str(&format!(
                "  {} --({}{:.3})--> H{m}\n",
                input_name(l),
                if w >= 0.0 { "+" } else { "" },
                w
            ));
        }
        for p in outputs {
            let v = net.weight(LinkId::HiddenOutput {
                output: p,
                hidden: m,
            });
            out.push_str(&format!(
                "  H{m} --({}{:.3})--> C{}\n",
                if v >= 0.0 { "+" } else { "" },
                v,
                p + 1
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pruned_net() -> Mlp {
        let mut net = Mlp::random(3, 2, 2, 1);
        // Keep only: in0 -> H0 (+2), H0 -> C1 (-3); everything else pruned.
        for l in 0..3 {
            for m in 0..2 {
                if !(l == 0 && m == 0) {
                    net.prune(LinkId::InputHidden {
                        hidden: m,
                        input: l,
                    });
                }
            }
        }
        for p in 0..2 {
            for m in 0..2 {
                if !(p == 0 && m == 0) {
                    net.prune(LinkId::HiddenOutput {
                        output: p,
                        hidden: m,
                    });
                }
            }
        }
        net.set_weight(
            LinkId::InputHidden {
                hidden: 0,
                input: 0,
            },
            2.0,
        );
        net.set_weight(
            LinkId::HiddenOutput {
                output: 0,
                hidden: 0,
            },
            -3.0,
        );
        net
    }

    #[test]
    fn summary_counts() {
        let net = pruned_net();
        let s = summarize(&net);
        assert_eq!(s.total_links, 2 * (3 + 2));
        assert_eq!(s.active_links, 2);
        assert_eq!(s.live_hidden, vec![0]);
        assert_eq!(s.used_inputs, vec![0]);
    }

    #[test]
    fn describe_shows_signs_and_names() {
        let net = pruned_net();
        let text = describe(&net, |l| format!("I{}", l + 1));
        assert!(text.contains("I1 --(+2.000)--> H0"), "{text}");
        assert!(text.contains("H0 --(-3.000)--> C1"), "{text}");
        assert!(text.contains("2 of 10 links active"));
        // Hidden node 1 is fully disconnected and must not appear.
        assert!(!text.contains("hidden node 1"), "{text}");
    }
}
