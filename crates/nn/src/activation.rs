//! Activation functions (§2.1: tanh for hidden nodes, sigmoid for outputs).

use serde::{Deserialize, Serialize};

/// A node activation function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// Hyperbolic tangent, `δ(x) = (eˣ − e⁻ˣ)/(eˣ + e⁻ˣ)`, range [−1, 1].
    /// The paper uses this for hidden nodes.
    Tanh,
    /// Logistic sigmoid, `σ(x) = 1/(1 + e⁻ˣ)`, range [0, 1].
    /// The paper uses this for output nodes.
    Sigmoid,
}

impl Activation {
    /// Applies the function.
    #[inline]
    pub fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Tanh => x.tanh(),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
        }
    }

    /// Derivative expressed in terms of the *output* `a = f(x)`:
    /// `tanh′ = 1 − a²`, `σ′ = a (1 − a)`.
    #[inline]
    pub fn derivative_from_output(self, a: f64) -> f64 {
        match self {
            Activation::Tanh => 1.0 - a * a,
            Activation::Sigmoid => a * (1.0 - a),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tanh_range_and_symmetry() {
        let f = Activation::Tanh;
        assert_eq!(f.apply(0.0), 0.0);
        assert!((f.apply(100.0) - 1.0).abs() < 1e-12);
        assert!((f.apply(-100.0) + 1.0).abs() < 1e-12);
        assert!((f.apply(0.5) + f.apply(-0.5)).abs() < 1e-15);
    }

    #[test]
    fn sigmoid_range_and_midpoint() {
        let f = Activation::Sigmoid;
        assert_eq!(f.apply(0.0), 0.5);
        assert!(f.apply(50.0) > 0.999_999);
        assert!(f.apply(-50.0) < 1e-6);
    }

    #[test]
    fn derivatives_match_finite_differences() {
        for f in [Activation::Tanh, Activation::Sigmoid] {
            for &x in &[-2.0, -0.5, 0.0, 0.3, 1.7] {
                let h = 1e-6;
                let numeric = (f.apply(x + h) - f.apply(x - h)) / (2.0 * h);
                let analytic = f.derivative_from_output(f.apply(x));
                assert!(
                    (numeric - analytic).abs() < 1e-8,
                    "{f:?} at {x}: {numeric} vs {analytic}"
                );
            }
        }
    }
}
