//! Three-layer feedforward network (NeuroRule §2.1).
//!
//! The paper's classifier is a multilayer perceptron with one hidden layer:
//! hyperbolic-tangent hidden activations (range [−1, 1]), sigmoid outputs
//! (range [0, 1]), trained to one-hot class targets by minimizing cross
//! entropy (eq. 2) plus a two-term weight-decay penalty (eq. 3) that drives
//! small weights toward zero so the pruning phase can remove them.
//!
//! The pieces:
//!
//! * [`Mlp`] — the network: dense weight matrices plus per-link boolean
//!   masks (a masked link is pruned: it contributes nothing and stays at 0);
//! * [`Penalty`] — eq. 3 with its ε₁/ε₂/β parameters;
//! * [`CrossEntropyObjective`] — eq. 2 + eq. 3 as an [`nr_opt::Objective`]
//!   over the *active* (unmasked) weights, with exact backprop gradients;
//! * [`Trainer`] — convenience wrapper choosing BFGS (the paper's method)
//!   or gradient descent and writing the optimized weights back.
//!
//! ```
//! use nr_nn::{Mlp, Trainer};
//! use nr_encode::EncodedDataset;
//!
//! // Tiny dataset: class = first input bit.
//! let data = EncodedDataset::from_parts(
//!     vec![1.0, 1.0, /* row 0 */ 0.0, 1.0 /* row 1 */],
//!     2,
//!     vec![0, 1],
//!     2,
//! );
//! let mut net = Mlp::random(2, 2, 2, 7);
//! let report = Trainer::default().train(&mut net, &data);
//! assert!(report.accuracy >= 0.5);
//! ```

#![deny(missing_docs)]

mod activation;
mod describe;
mod matrix;
mod mlp;
mod objective;
mod par;
mod trainer;
mod undo;

pub use activation::Activation;
pub use describe::{describe, summarize, NetworkSummary};
pub use matrix::{axpy, gemm_bits_nt, gemm_nn, gemm_nt, gemm_tn_acc, gemm_tn_bits_acc, Matrix};
pub use mlp::{argmax, LinkId, Mlp};
pub use objective::{CrossEntropyObjective, Penalty};
pub use par::{map_indexed_scoped, resolve_threads};
pub use trainer::{TrainReport, Trainer, TrainingAlgorithm, WarmState};
pub use undo::UndoLog;
