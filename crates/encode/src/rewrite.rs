//! Rewriting literal conjunctions into attribute-space rules.
//!
//! RX produces rules over input bits (`I13 = 1 ∧ I17 = 0 ⇒ Group A`); this
//! module turns them into the paper's final form over original attributes
//! (`commission > 0 ∧ age < 40 ⇒ Group A`), returning `None` for
//! conjunctions that no tuple can satisfy (the paper's redundant R′₁).

use std::collections::BTreeMap;

use nr_rules::{Condition, Rule};
use nr_tabular::ClassId;
use serde::{Deserialize, Serialize};

use crate::{BitMeaning, Encoder};

/// One literal over an input bit: `I<bit+1> = value`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Literal {
    /// Global bit index (0-based; the paper's `I_k` is `bit = k−1`).
    pub bit: usize,
    /// Required bit value.
    pub value: bool,
}

impl Literal {
    /// Convenience constructor.
    pub fn new(bit: usize, value: bool) -> Self {
        Literal { bit, value }
    }

    /// Paper-style rendering, e.g. `I13=1`.
    pub fn display(&self) -> String {
        format!("I{}={}", self.bit + 1, if self.value { 1 } else { 0 })
    }
}

/// Per-attribute accumulator used while folding literals.
#[derive(Debug, Default, Clone)]
struct ThermoBounds {
    /// Max threshold among 1-literals (None = unconstrained).
    lo: Option<f64>,
    /// Min threshold among 0-literals (None = unconstrained).
    hi: Option<f64>,
    lowest_threshold: f64,
    absent_value: Option<f64>,
}

#[derive(Debug, Default, Clone)]
struct OneHotBounds {
    eq: Vec<u32>,
    ne: Vec<u32>,
}

/// Converts a conjunction of literals into attribute conditions.
///
/// Returns `None` when the conjunction is infeasible: contradictory interval
/// bounds (thermometer monotonicity violated), a zero literal on the
/// always-one base bit or the bias, two distinct one-hot equalities, or an
/// exhaustive one-hot exclusion.
pub fn literals_to_conditions(enc: &Encoder, literals: &[Literal]) -> Option<Vec<Condition>> {
    let mut thermo: BTreeMap<usize, ThermoBounds> = BTreeMap::new();
    let mut onehot: BTreeMap<usize, OneHotBounds> = BTreeMap::new();

    for lit in literals {
        match enc.bit_meaning(lit.bit) {
            BitMeaning::Bias => {
                if !lit.value {
                    return None; // bias is constant 1
                }
            }
            BitMeaning::Threshold {
                attribute,
                threshold,
                lowest_threshold,
                absent_value,
            } => {
                let b = thermo.entry(attribute).or_default();
                b.lowest_threshold = lowest_threshold;
                b.absent_value = absent_value;
                if lit.value {
                    if threshold.is_finite() {
                        b.lo = Some(b.lo.map_or(threshold, |l| l.max(threshold)));
                    }
                    // A 1-literal on the −∞ base bit is vacuous.
                } else {
                    if threshold == f64::NEG_INFINITY {
                        return None; // base bit is constant 1
                    }
                    b.hi = Some(b.hi.map_or(threshold, |h| h.min(threshold)));
                }
            }
            BitMeaning::Category { attribute, code } => {
                let b = onehot.entry(attribute).or_default();
                if lit.value {
                    if !b.eq.contains(&code) {
                        b.eq.push(code);
                    }
                } else if !b.ne.contains(&code) {
                    b.ne.push(code);
                }
            }
        }
    }

    let mut conditions = Vec::new();
    for (attribute, b) in &thermo {
        if let (Some(l), Some(h)) = (b.lo, b.hi) {
            if l >= h {
                return None;
            }
        }
        match (b.lo, b.hi) {
            (None, Some(h)) if h <= b.lowest_threshold && b.absent_value.is_some() => {
                // Below every interval: the all-zero pattern's exact value.
                conditions.push(Condition::NumEq {
                    attribute: *attribute,
                    value: b.absent_value.expect("checked"),
                });
            }
            (lo, hi) => {
                if lo.is_some() || hi.is_some() {
                    conditions.push(Condition::Num {
                        attribute: *attribute,
                        lo,
                        hi,
                    });
                }
            }
        }
    }
    for (attribute, b) in &onehot {
        if b.eq.len() > 1 {
            return None;
        }
        if let Some(&code) = b.eq.first() {
            if b.ne.contains(&code) {
                return None;
            }
            conditions.push(Condition::CatEq {
                attribute: *attribute,
                code,
            });
        } else if !b.ne.is_empty() {
            let cardinality = enc.codings()[*attribute].bits();
            if b.ne.len() >= cardinality {
                return None; // every category excluded
            }
            conditions.push(Condition::CatNotIn {
                attribute: *attribute,
                codes: b.ne.iter().copied().collect(),
            });
        }
    }
    Some(conditions)
}

/// Converts literals to a full [`Rule`], `None` when infeasible.
pub fn literals_to_rule(enc: &Encoder, literals: &[Literal], class: ClassId) -> Option<Rule> {
    literals_to_conditions(enc, literals).map(|conds| Rule::new(conds, class))
}

/// True when the literal holds for every feasible input (e.g. a 1-literal
/// on an always-one base bit or on the bias).
pub fn literal_is_tautology(enc: &Encoder, lit: Literal) -> bool {
    match enc.bit_meaning(lit.bit) {
        BitMeaning::Bias => lit.value,
        BitMeaning::Threshold { threshold, .. } => lit.value && threshold == f64::NEG_INFINITY,
        BitMeaning::Category { .. } => false,
    }
}

/// True when literal `a` semantically implies literal `b` under the coding
/// constraints (same-attribute thermometer monotonicity, one-hot
/// exclusivity). Reflexive; `false` across attributes.
pub fn literal_implies(enc: &Encoder, a: Literal, b: Literal) -> bool {
    if a == b || literal_is_tautology(enc, b) {
        return true;
    }
    let (ma, mb) = (enc.bit_meaning(a.bit), enc.bit_meaning(b.bit));
    match (ma, mb) {
        (
            BitMeaning::Threshold {
                attribute: aa,
                threshold: ta,
                ..
            },
            BitMeaning::Threshold {
                attribute: ab,
                threshold: tb,
                ..
            },
        ) if aa == ab => {
            if a.value && b.value {
                // value >= ta  =>  value >= tb  when ta >= tb.
                ta >= tb
            } else if !a.value && !b.value {
                // value < ta  =>  value < tb  when ta <= tb.
                ta <= tb
            } else {
                false
            }
        }
        (
            BitMeaning::Category {
                attribute: aa,
                code: ca,
            },
            BitMeaning::Category {
                attribute: ab,
                code: cb,
            },
        ) if aa == ab => {
            // attr = ca  =>  attr != cb  for any other code.
            a.value && !b.value && ca != cb
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enc() -> Encoder {
        Encoder::agrawal()
    }

    // Paper bit indices (0-based): I2 -> 1, I5 -> 4, I13 -> 12, I15 -> 14, I17 -> 16.

    #[test]
    fn paper_rule_r1() {
        // R1: I2=0, I17=0, I13=0  =>  salary<100000, commission=0, age<40.
        let lits = [
            Literal::new(1, false),
            Literal::new(16, false),
            Literal::new(12, false),
        ];
        let conds = literals_to_conditions(&enc(), &lits).unwrap();
        assert!(conds.contains(&Condition::num_lt(0, 100_000.0)));
        assert!(conds.contains(&Condition::NumEq {
            attribute: 1,
            value: 0.0
        }));
        assert!(conds.contains(&Condition::num_lt(2, 40.0)));
        assert_eq!(conds.len(), 3);
    }

    #[test]
    fn paper_rule_r2() {
        // R2: I5=1, I13=1, I15=1 => salary>=25000, commission>=10000, age>=60.
        let lits = [
            Literal::new(4, true),
            Literal::new(12, true),
            Literal::new(14, true),
        ];
        let conds = literals_to_conditions(&enc(), &lits).unwrap();
        assert!(conds.contains(&Condition::num_ge(0, 25_000.0)));
        assert!(conds.contains(&Condition::num_ge(1, 10_000.0)));
        assert!(conds.contains(&Condition::num_ge(2, 60.0)));
    }

    #[test]
    fn paper_rule_r1_prime_is_infeasible() {
        // R'1: I2=0, I17=0, I5=1, I15=1 => age>=60 and age<40: contradiction.
        let lits = [
            Literal::new(1, false),
            Literal::new(16, false),
            Literal::new(4, true),
            Literal::new(14, true),
        ];
        assert_eq!(literals_to_conditions(&enc(), &lits), None);
    }

    #[test]
    fn zero_on_base_bit_is_infeasible() {
        // I6 (index 5) is the always-one salary base bit.
        assert_eq!(
            literals_to_conditions(&enc(), &[Literal::new(5, false)]),
            None
        );
        // A 1-literal on it is vacuous.
        assert_eq!(
            literals_to_conditions(&enc(), &[Literal::new(5, true)]),
            Some(vec![])
        );
    }

    #[test]
    fn bias_literals() {
        let e = enc();
        let bias = e.bias_bit();
        assert_eq!(
            literals_to_conditions(&e, &[Literal::new(bias, true)]),
            Some(vec![])
        );
        assert_eq!(
            literals_to_conditions(&e, &[Literal::new(bias, false)]),
            None
        );
    }

    #[test]
    fn one_hot_equality_and_exclusion() {
        let e = enc();
        // car bits start at 23; car code 3 -> bit 26.
        let conds = literals_to_conditions(&e, &[Literal::new(26, true)]).unwrap();
        assert_eq!(
            conds,
            vec![Condition::CatEq {
                attribute: 4,
                code: 3
            }]
        );
        // Two distinct car equalities conflict.
        assert_eq!(
            literals_to_conditions(&e, &[Literal::new(26, true), Literal::new(27, true)]),
            None
        );
        // Equality plus exclusion of the same code conflicts.
        assert_eq!(
            literals_to_conditions(&e, &[Literal::new(26, true), Literal::new(26, false)]),
            None
        );
        // Pure exclusions collect.
        let conds = literals_to_conditions(&e, &[Literal::new(26, false), Literal::new(27, false)])
            .unwrap();
        assert_eq!(
            conds,
            vec![Condition::CatNotIn {
                attribute: 4,
                codes: [3, 4].into_iter().collect()
            }]
        );
    }

    #[test]
    fn exhaustive_exclusion_is_infeasible() {
        let e = enc();
        // zipcode has 9 categories at bits 43..52; exclude all of them.
        let lits: Vec<Literal> = (43..52).map(|b| Literal::new(b, false)).collect();
        assert_eq!(literals_to_conditions(&e, &lits), None);
    }

    #[test]
    fn interval_from_both_sides() {
        // I4=1 (salary>=50000) and I2=0 (salary<100000).
        let conds =
            literals_to_conditions(&enc(), &[Literal::new(3, true), Literal::new(1, false)])
                .unwrap();
        assert_eq!(
            conds,
            vec![Condition::Num {
                attribute: 0,
                lo: Some(50_000.0),
                hi: Some(100_000.0)
            }]
        );
    }

    #[test]
    fn empty_interval_is_infeasible() {
        // salary >= 100000 and salary < 50000.
        assert_eq!(
            literals_to_conditions(&enc(), &[Literal::new(1, true), Literal::new(3, false)]),
            None
        );
    }

    #[test]
    fn rule_construction() {
        let rule = literals_to_rule(&enc(), &[Literal::new(16, false)], 0).unwrap();
        assert_eq!(rule.class, 0);
        assert_eq!(rule.conditions, vec![Condition::num_lt(2, 40.0)]);
    }

    #[test]
    fn literal_display() {
        assert_eq!(Literal::new(12, true).display(), "I13=1");
        assert_eq!(Literal::new(16, false).display(), "I17=0");
    }
}
