//! Per-attribute binary codings and per-bit meanings.

use nr_tabular::Value;
use serde::{Deserialize, Serialize};

/// How one attribute is mapped to bits.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AttrCoding {
    /// Thermometer coding of an ordered attribute.
    ///
    /// `thresholds` is ascending; the attribute occupies `thresholds.len()`
    /// bits, and **bit `j` (left→right) is 1 iff `value ≥
    /// thresholds[M−1−j]`** — i.e. the leftmost bit carries the highest
    /// threshold and set bits form a suffix, exactly the paper's
    /// `{000001}, {000011}, …` scheme. `thresholds[0]` may be `−∞`, making
    /// the last bit constant 1 (salary/age/…); when it is finite, the
    /// all-zero pattern is meaningful and `absent_value` (if set) names the
    /// exact value it stands for (commission: all-zero ⇔ `commission = 0`).
    Thermometer {
        /// Ascending interval thresholds; one bit per entry.
        /// (`thresholds[0]` may be `−∞`; JSON cannot hold infinities, so a
        /// custom codec maps them to tagged strings.)
        #[serde(with = "inf_vec")]
        thresholds: Vec<f64>,
        /// Exact value represented by the all-zero pattern, if any.
        absent_value: Option<f64>,
    },
    /// One-hot coding of a nominal attribute: bit `j` ⇔ `value = category j`.
    OneHot {
        /// Number of categories (= number of bits).
        cardinality: usize,
    },
}

impl AttrCoding {
    /// Thermometer coding with an always-one base bit (`−∞` threshold) and
    /// the given finite cut points.
    pub fn thermometer(cuts: Vec<f64>) -> AttrCoding {
        let mut thresholds = Vec::with_capacity(cuts.len() + 1);
        thresholds.push(f64::NEG_INFINITY);
        thresholds.extend(cuts);
        debug_assert!(
            thresholds.windows(2).all(|w| w[0] < w[1]),
            "cuts must ascend"
        );
        AttrCoding::Thermometer {
            thresholds,
            absent_value: None,
        }
    }

    /// Thermometer coding whose lowest threshold is finite, so the all-zero
    /// pattern means `value = absent_value` (e.g. `commission = 0`).
    pub fn thermometer_with_absent(thresholds: Vec<f64>, absent_value: f64) -> AttrCoding {
        debug_assert!(
            thresholds.windows(2).all(|w| w[0] < w[1]),
            "thresholds must ascend"
        );
        debug_assert!(thresholds[0].is_finite());
        AttrCoding::Thermometer {
            thresholds,
            absent_value: Some(absent_value),
        }
    }

    /// Number of bits this coding occupies.
    pub fn bits(&self) -> usize {
        match self {
            AttrCoding::Thermometer { thresholds, .. } => thresholds.len(),
            AttrCoding::OneHot { cardinality } => *cardinality,
        }
    }

    /// Encodes one value into `out` (must have length [`Self::bits`]).
    pub fn encode(&self, value: &Value, out: &mut [f64]) {
        match self {
            AttrCoding::Thermometer { thresholds, .. } => {
                let x = value.expect_num();
                let m = thresholds.len();
                for (j, slot) in out.iter_mut().enumerate() {
                    *slot = if x >= thresholds[m - 1 - j] { 1.0 } else { 0.0 };
                }
            }
            AttrCoding::OneHot { cardinality } => {
                let c = value.expect_nominal() as usize;
                debug_assert!(c < *cardinality);
                for (j, slot) in out.iter_mut().enumerate() {
                    *slot = if j == c { 1.0 } else { 0.0 };
                }
            }
        }
    }

    /// Meaning of local bit `j` of this coding.
    pub fn bit_meaning(&self, attribute: usize, j: usize) -> BitMeaning {
        match self {
            AttrCoding::Thermometer {
                thresholds,
                absent_value,
            } => {
                let m = thresholds.len();
                BitMeaning::Threshold {
                    attribute,
                    threshold: thresholds[m - 1 - j],
                    lowest_threshold: thresholds[0],
                    absent_value: *absent_value,
                }
            }
            AttrCoding::OneHot { .. } => BitMeaning::Category {
                attribute,
                code: j as u32,
            },
        }
    }
}

/// Serde codec for threshold vectors that may contain `±∞` (JSON has no
/// representation for infinities; `serde_json` would emit `null`).
mod inf_vec {
    use serde::de::Error as _;
    use serde::{Deserialize, Deserializer, Serialize, Serializer};

    #[derive(Serialize, Deserialize)]
    #[serde(untagged)]
    enum Cell {
        Num(f64),
        Tag(String),
    }

    pub fn serialize<S: Serializer>(v: &[f64], s: S) -> Result<S::Ok, S::Error> {
        let cells: Vec<Cell> = v
            .iter()
            .map(|&x| {
                if x == f64::NEG_INFINITY {
                    Cell::Tag("-inf".into())
                } else if x == f64::INFINITY {
                    Cell::Tag("+inf".into())
                } else {
                    Cell::Num(x)
                }
            })
            .collect();
        cells.serialize(s)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Vec<f64>, D::Error> {
        let cells = Vec::<Cell>::deserialize(d)?;
        cells
            .into_iter()
            .map(|c| match c {
                Cell::Num(x) => Ok(x),
                Cell::Tag(t) if t == "-inf" => Ok(f64::NEG_INFINITY),
                Cell::Tag(t) if t == "+inf" => Ok(f64::INFINITY),
                Cell::Tag(t) => Err(D::Error::custom(format!("bad threshold tag {t:?}"))),
            })
            .collect()
    }
}

/// What a single input bit asserts when set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BitMeaning {
    /// Bit = 1 ⟺ `attribute ≥ threshold` (thermometer bit).
    Threshold {
        /// Attribute index.
        attribute: usize,
        /// This bit's threshold (`−∞` for the always-one base bit).
        threshold: f64,
        /// The coding's lowest threshold (used to recognize the all-zero ⇒
        /// `absent_value` rewrite).
        lowest_threshold: f64,
        /// Exact value represented by values below the lowest threshold.
        absent_value: Option<f64>,
    },
    /// Bit = 1 ⟺ `attribute = code` (one-hot bit).
    Category {
        /// Attribute index.
        attribute: usize,
        /// Category code.
        code: u32,
    },
    /// The always-one bias input.
    Bias,
}

impl BitMeaning {
    /// The attribute this bit describes, `None` for the bias.
    pub fn attribute(&self) -> Option<usize> {
        match self {
            BitMeaning::Threshold { attribute, .. } | BitMeaning::Category { attribute, .. } => {
                Some(*attribute)
            }
            BitMeaning::Bias => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thermometer_suffix_pattern() {
        // Salary-style: cuts at 25K..125K -> 6 bits.
        let c = AttrCoding::thermometer(vec![25e3, 50e3, 75e3, 100e3, 125e3]);
        assert_eq!(c.bits(), 6);
        let mut out = vec![0.0; 6];
        c.encode(&Value::Num(20_000.0), &mut out);
        assert_eq!(out, [0.0, 0.0, 0.0, 0.0, 0.0, 1.0]); // {000001}
        c.encode(&Value::Num(30_000.0), &mut out);
        assert_eq!(out, [0.0, 0.0, 0.0, 0.0, 1.0, 1.0]); // {000011}
        c.encode(&Value::Num(149_000.0), &mut out);
        assert_eq!(out, [1.0; 6]);
    }

    #[test]
    fn thermometer_boundary_is_ge() {
        let c = AttrCoding::thermometer(vec![25e3]);
        let mut out = vec![0.0; 2];
        c.encode(&Value::Num(25_000.0), &mut out);
        assert_eq!(out, [1.0, 1.0]);
        c.encode(&Value::Num(24_999.9), &mut out);
        assert_eq!(out, [0.0, 1.0]);
    }

    #[test]
    fn absent_thermometer_all_zero() {
        // Commission-style: 7 bits, all-zero means commission = 0.
        let c = AttrCoding::thermometer_with_absent(
            vec![10e3, 20e3, 30e3, 40e3, 50e3, 60e3, 70e3],
            0.0,
        );
        assert_eq!(c.bits(), 7);
        let mut out = vec![9.0; 7];
        c.encode(&Value::Num(0.0), &mut out);
        assert_eq!(out, [0.0; 7]);
        c.encode(&Value::Num(15_000.0), &mut out);
        assert_eq!(out, [0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0]);
        c.encode(&Value::Num(72_000.0), &mut out);
        assert_eq!(out, [1.0; 7]);
    }

    #[test]
    fn one_hot() {
        let c = AttrCoding::OneHot { cardinality: 4 };
        let mut out = vec![0.0; 4];
        c.encode(&Value::Nominal(2), &mut out);
        assert_eq!(out, [0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn bit_meanings_descend_in_threshold() {
        let c = AttrCoding::thermometer(vec![30.0, 40.0]);
        let m0 = c.bit_meaning(5, 0);
        let m2 = c.bit_meaning(5, 2);
        match (m0, m2) {
            (
                BitMeaning::Threshold {
                    threshold: t0,
                    attribute: 5,
                    ..
                },
                BitMeaning::Threshold {
                    threshold: t2,
                    attribute: 5,
                    ..
                },
            ) => {
                assert_eq!(t0, 40.0);
                assert_eq!(t2, f64::NEG_INFINITY);
            }
            other => panic!("unexpected meanings {other:?}"),
        }
    }

    #[test]
    fn serde_roundtrip_with_infinity() {
        let c = AttrCoding::thermometer(vec![25e3, 50e3]);
        let json = serde_json::to_string(&c).unwrap();
        assert!(json.contains("-inf"));
        let back: AttrCoding = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
        let one_hot = AttrCoding::OneHot { cardinality: 9 };
        let json = serde_json::to_string(&one_hot).unwrap();
        let back: AttrCoding = serde_json::from_str(&json).unwrap();
        assert_eq!(one_hot, back);
    }

    #[test]
    fn one_hot_bit_meaning() {
        let c = AttrCoding::OneHot { cardinality: 3 };
        assert_eq!(
            c.bit_meaning(1, 2),
            BitMeaning::Category {
                attribute: 1,
                code: 2
            }
        );
        assert_eq!(c.bit_meaning(1, 2).attribute(), Some(1));
        assert_eq!(BitMeaning::Bias.attribute(), None);
    }
}
