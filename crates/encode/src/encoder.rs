//! The schema-level encoder: bit layout and dataset encoding.

use std::sync::Arc;

use nr_tabular::{ClassId, Column, Dataset, DatasetView, Schema, Value};
use serde::{Deserialize, Serialize};

use crate::{AttrCoding, BitMeaning};

/// Maps rows of a [`Schema`] to binary input vectors for the network.
///
/// The bit layout is the concatenation of each attribute's coding in schema
/// order, followed by one always-one bias bit (the paper's input I87).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Encoder {
    schema: Schema,
    codings: Vec<AttrCoding>,
    /// Start offset of each attribute's bit span.
    offsets: Vec<usize>,
    n_data_bits: usize,
}

impl Encoder {
    /// Builds an encoder from explicit per-attribute codings.
    pub fn new(schema: Schema, codings: Vec<AttrCoding>) -> Result<Self, crate::EncodeError> {
        if schema.arity() != codings.len() {
            return Err(crate::EncodeError::SchemaMismatch(format!(
                "{} attributes vs {} codings",
                schema.arity(),
                codings.len()
            )));
        }
        let mut offsets = Vec::with_capacity(codings.len());
        let mut n = 0usize;
        for c in &codings {
            offsets.push(n);
            n += c.bits();
        }
        Ok(Encoder {
            schema,
            codings,
            offsets,
            n_data_bits: n,
        })
    }

    /// The Table 2 encoder for the Agrawal schema: 86 data bits + bias.
    ///
    /// Layout (1-based, as in the paper): salary I1–I6, commission I7–I13,
    /// age I14–I19, elevel I20–I23, car I24–I43, zipcode I44–I52,
    /// hvalue I53–I66, hyears I67–I76, loan I77–I86, bias I87.
    pub fn agrawal() -> Encoder {
        let schema = agrawal_schema_local();
        let step = |lo: f64, step: f64, n: usize| -> Vec<f64> {
            (1..=n).map(|i| lo + step * i as f64).collect()
        };
        let codings = vec![
            // salary: 6 intervals of width 25 000 below 125 000, open above.
            AttrCoding::thermometer(step(0.0, 25_000.0, 5)),
            // commission: 0 or [10 000, 75 000] in 7 intervals of width 10 000.
            AttrCoding::thermometer_with_absent(step(0.0, 10_000.0, 7), 0.0),
            // age: 6 intervals of width 10 from 20.
            AttrCoding::thermometer(step(20.0, 10.0, 5)),
            // elevel: ordered 0..4 -> 4 bits (>=1, >=2, >=3, >=4).
            AttrCoding::thermometer_with_absent(vec![1.0, 2.0, 3.0, 4.0], 0.0),
            // car: 20 categories, one-hot.
            AttrCoding::OneHot { cardinality: 20 },
            // zipcode: 9 categories, one-hot.
            AttrCoding::OneHot { cardinality: 9 },
            // hvalue: 14 intervals of width 100 000.
            AttrCoding::thermometer(step(0.0, 100_000.0, 13)),
            // hyears: 10 intervals of width 3 from 1.
            AttrCoding::thermometer(step(1.0, 3.0, 9)),
            // loan: 10 intervals of width 50 000.
            AttrCoding::thermometer(step(0.0, 50_000.0, 9)),
        ];
        Encoder::new(schema, codings).expect("static layout is consistent")
    }

    /// Fits a generic encoder to a dataset: numeric attributes get
    /// equal-width thermometer codes with `bins` intervals over the observed
    /// range; nominal attributes get one-hot codes.
    pub fn fit(ds: &Dataset, bins: usize) -> Result<Encoder, crate::EncodeError> {
        Self::fit_view(&ds.view(), bins)
    }

    /// [`Encoder::fit`] over a row selection (e.g. a training fold).
    pub fn fit_view(view: &DatasetView<'_>, bins: usize) -> Result<Encoder, crate::EncodeError> {
        assert!(bins >= 2, "need at least two bins");
        let schema = view.schema().clone();
        let mut codings = Vec::with_capacity(schema.arity());
        for (i, attr) in schema.attributes().iter().enumerate() {
            if let Some(card) = attr.cardinality() {
                codings.push(AttrCoding::OneHot { cardinality: card });
            } else {
                let (lo, hi) = view.numeric_range(i).unwrap_or((0.0, 1.0));
                let width = if hi > lo {
                    (hi - lo) / bins as f64
                } else {
                    1.0
                };
                let cuts: Vec<f64> = (1..bins).map(|k| lo + width * k as f64).collect();
                codings.push(AttrCoding::thermometer(cuts));
            }
        }
        Encoder::new(schema, codings)
    }

    /// [`Encoder::fit`] over several views sharing one schema — the
    /// segment-at-a-time fit for out-of-core stores (`nr-store`): numeric
    /// ranges are combined across all views, so the result is identical
    /// to fitting the concatenated dataset, without materializing it.
    pub fn fit_views<'a, I>(views: I, bins: usize) -> Result<Encoder, crate::EncodeError>
    where
        I: IntoIterator<Item = DatasetView<'a>>,
    {
        assert!(bins >= 2, "need at least two bins");
        let mut schema: Option<Schema> = None;
        let mut ranges: Vec<Option<(f64, f64)>> = Vec::new();
        for view in views {
            let s = view.schema();
            match &schema {
                None => {
                    schema = Some(s.clone());
                    ranges = vec![None; s.arity()];
                }
                Some(first) => {
                    if first != s {
                        return Err(crate::EncodeError::SchemaMismatch(
                            "views disagree on the schema".into(),
                        ));
                    }
                }
            }
            for (i, slot) in ranges.iter_mut().enumerate() {
                if let Some((lo, hi)) = view.numeric_range(i) {
                    *slot = Some(match *slot {
                        None => (lo, hi),
                        Some((a, b)) => (a.min(lo), b.max(hi)),
                    });
                }
            }
        }
        let schema = schema.ok_or_else(|| {
            crate::EncodeError::SchemaMismatch("fit_views needs at least one view".into())
        })?;
        let mut codings = Vec::with_capacity(schema.arity());
        for (i, attr) in schema.attributes().iter().enumerate() {
            if let Some(card) = attr.cardinality() {
                codings.push(AttrCoding::OneHot { cardinality: card });
            } else {
                let (lo, hi) = ranges[i].unwrap_or((0.0, 1.0));
                let width = if hi > lo {
                    (hi - lo) / bins as f64
                } else {
                    1.0
                };
                let cuts: Vec<f64> = (1..bins).map(|k| lo + width * k as f64).collect();
                codings.push(AttrCoding::thermometer(cuts));
            }
        }
        Encoder::new(schema, codings)
    }

    /// The schema this encoder understands.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Per-attribute codings in schema order.
    pub fn codings(&self) -> &[AttrCoding] {
        &self.codings
    }

    /// Number of data bits (excluding the bias).
    pub fn n_data_bits(&self) -> usize {
        self.n_data_bits
    }

    /// Number of network inputs (data bits + bias).
    pub fn n_inputs(&self) -> usize {
        self.n_data_bits + 1
    }

    /// Global index of the bias bit.
    pub fn bias_bit(&self) -> usize {
        self.n_data_bits
    }

    /// Global bit span `[start, start+len)` of attribute `a`.
    pub fn span(&self, a: usize) -> (usize, usize) {
        (self.offsets[a], self.codings[a].bits())
    }

    /// Meaning of global bit `i`.
    pub fn bit_meaning(&self, i: usize) -> BitMeaning {
        if i == self.n_data_bits {
            return BitMeaning::Bias;
        }
        let a = self.attribute_of_bit(i).expect("bit in range");
        self.codings[a].bit_meaning(a, i - self.offsets[a])
    }

    /// Attribute owning global bit `i` (`None` for the bias).
    pub fn attribute_of_bit(&self, i: usize) -> Option<usize> {
        if i >= self.n_data_bits {
            return None;
        }
        // offsets is ascending; find the last offset <= i.
        let a = match self.offsets.binary_search(&i) {
            Ok(exact) => exact,
            Err(ins) => ins - 1,
        };
        Some(a)
    }

    /// Human-readable name of bit `i`, paper-style (`I1`…`I87`).
    pub fn bit_name(&self, i: usize) -> String {
        format!("I{}", i + 1)
    }

    /// Encodes one row into `out` (length [`Self::n_inputs`]; bias included).
    pub fn encode_row_into(&self, row: &[Value], out: &mut [f64]) {
        debug_assert_eq!(out.len(), self.n_inputs());
        for (a, coding) in self.codings.iter().enumerate() {
            let (start, len) = self.span(a);
            coding.encode(&row[a], &mut out[start..start + len]);
        }
        out[self.n_data_bits] = 1.0;
    }

    /// Encodes one row, allocating.
    pub fn encode_row(&self, row: &[Value]) -> Vec<f64> {
        let mut out = vec![0.0; self.n_inputs()];
        self.encode_row_into(row, &mut out);
        out
    }

    /// Encodes a whole dataset.
    ///
    /// The fill is column-major over the dataset's typed columns: each
    /// attribute's coding walks one contiguous `Vec<f64>`/`Vec<u32>` and
    /// scatters its bit span into every output row — no per-row `Vec<Value>`
    /// is ever materialized.
    pub fn encode_dataset(&self, ds: &Dataset) -> EncodedDataset {
        self.encode_view(&ds.view())
    }

    /// Encodes a row selection (e.g. a cross-validation fold) without
    /// materializing it.
    pub fn encode_view(&self, view: &DatasetView<'_>) -> EncodedDataset {
        let cols = self.n_inputs();
        let rows = view.len();
        let mut data = vec![0.0; rows * cols];
        for (a, coding) in self.codings.iter().enumerate() {
            let (start, len) = self.span(a);
            match view.dataset().column(a) {
                Column::Num(_) => {
                    for (i, x) in view.num_column(a).enumerate() {
                        let at = i * cols + start;
                        coding.encode(&Value::Num(x), &mut data[at..at + len]);
                    }
                }
                Column::Nominal(_) => {
                    for (i, c) in view.nominal_column(a).enumerate() {
                        let at = i * cols + start;
                        coding.encode(&Value::Nominal(c), &mut data[at..at + len]);
                    }
                }
            }
        }
        let bias = self.n_data_bits;
        for i in 0..rows {
            data[i * cols + bias] = 1.0;
        }
        let targets: Vec<ClassId> = view.labels().collect();
        EncodedDataset::from_parts(data, cols, targets, view.n_classes())
    }
}

/// Local copy of the Agrawal schema to avoid a dependency cycle with
/// `nr-datagen` (which depends on nothing here; both crates must agree —
/// an integration test in the workspace root asserts they do).
fn agrawal_schema_local() -> Schema {
    use nr_tabular::Attribute;
    Schema::new(vec![
        Attribute::numeric("salary"),
        Attribute::numeric("commission"),
        Attribute::numeric("age"),
        Attribute::numeric("elevel"),
        Attribute::nominal("car", (1..=20).map(|i| format!("car{i}"))),
        Attribute::nominal("zipcode", (1..=9).map(|i| format!("zip{i}"))),
        Attribute::numeric("hvalue"),
        Attribute::numeric("hyears"),
        Attribute::numeric("loan"),
    ])
}

/// A dataset encoded to network inputs: a dense row-major matrix of 0/1
/// values (plus the bias column) and integer class targets.
///
/// Alongside the per-row accessors, the encoded data is held in the batch
/// layout the network's matrix kernels consume — one contiguous row-major
/// inputs buffer plus a one-hot target matrix, both built once at encoding
/// time and exposed through [`EncodedDataset::batch`]. The buffers are
/// reference-counted so a [`SharedBatch`] handle (an `Arc` clone per
/// buffer, no data copy) can be moved onto long-lived worker threads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EncodedDataset {
    data: Arc<Vec<f64>>,
    cols: usize,
    targets: Arc<Vec<ClassId>>,
    n_classes: usize,
    /// Row-major `rows × n_classes` one-hot expansion of `targets`.
    onehot: Arc<Vec<f64>>,
    /// Set-bit layout of `data`, present when every entry is exactly 0/1.
    bits: Option<Arc<BinaryInputs>>,
}

/// Compressed set-bit (CSR-style) layout of a strictly-0/1 input matrix.
///
/// The paper's thermometer/one-hot coding (Table 2) produces inputs that
/// are exactly 0.0 or 1.0, so a row's contribution to `X·Wᵀ` is a plain
/// gather-sum over its set bits — a fraction of the dense multiply-adds.
/// Built once at encoding time; consumers fall back to the dense buffer
/// when the data is not binary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BinaryInputs {
    /// Set-bit column indices, ascending within each row, rows concatenated.
    indices: Vec<u32>,
    /// Row `i`'s indices are `indices[offsets[i]..offsets[i + 1]]`.
    offsets: Vec<usize>,
}

impl BinaryInputs {
    /// Builds the layout, or `None` when any entry is not exactly 0/1.
    fn detect(data: &[f64], cols: usize) -> Option<BinaryInputs> {
        if cols == 0 {
            return None;
        }
        let rows = data.len() / cols;
        let mut indices = Vec::with_capacity(data.len() / 4);
        let mut offsets = Vec::with_capacity(rows + 1);
        offsets.push(0);
        for r in 0..rows {
            for (c, &v) in data[r * cols..(r + 1) * cols].iter().enumerate() {
                if v == 1.0 {
                    indices.push(c as u32);
                } else if v != 0.0 {
                    return None;
                }
            }
            offsets.push(indices.len());
        }
        Some(BinaryInputs { indices, offsets })
    }

    /// Number of rows described.
    pub fn rows(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Set-bit column indices of row `i`, ascending.
    #[inline]
    pub fn row(&self, i: usize) -> &[u32] {
        &self.indices[self.offsets[i]..self.offsets[i + 1]]
    }

    /// All set-bit indices, rows concatenated (see [`BinaryInputs::offsets`]).
    #[inline]
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// Per-row offsets into [`BinaryInputs::indices`] (length `rows + 1`).
    #[inline]
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }
}

/// Borrowed dense batch view of an [`EncodedDataset`]: the whole dataset as
/// two contiguous row-major matrices, ready for matrix-matrix kernels.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EncodedBatch<'a> {
    /// All input rows, row-major (`rows × cols`, bias column included).
    pub inputs: &'a [f64],
    /// One-hot targets, row-major (`rows × n_classes`).
    pub targets_onehot: &'a [f64],
    /// Number of rows.
    pub rows: usize,
    /// Number of input columns.
    pub cols: usize,
    /// Number of classes (columns of `targets_onehot`).
    pub n_classes: usize,
    /// Set-bit layout of `inputs` when the data is strictly 0/1
    /// (always the case for the paper's Table-2 coding).
    pub bits: Option<&'a BinaryInputs>,
}

/// Owned, cheaply-cloneable handle on an [`EncodedDataset`]'s batch
/// buffers (`Arc` clones — no data copy).
///
/// Unlike the borrowed [`EncodedBatch`], a `SharedBatch` is `'static`: it
/// can move into jobs submitted to a long-lived worker pool. Borrow a
/// kernel-ready [`EncodedBatch`] back on the worker via
/// [`SharedBatch::batch`].
#[derive(Debug, Clone)]
pub struct SharedBatch {
    inputs: Arc<Vec<f64>>,
    onehot: Arc<Vec<f64>>,
    targets: Arc<Vec<ClassId>>,
    bits: Option<Arc<BinaryInputs>>,
    rows: usize,
    cols: usize,
    n_classes: usize,
}

impl SharedBatch {
    /// Borrows the kernel-facing batch view.
    #[inline]
    pub fn batch(&self) -> EncodedBatch<'_> {
        EncodedBatch {
            inputs: &self.inputs,
            targets_onehot: &self.onehot,
            rows: self.rows,
            cols: self.cols,
            n_classes: self.n_classes,
            bits: self.bits.as_deref(),
        }
    }

    /// Class targets, one per row.
    #[inline]
    pub fn targets(&self) -> &[ClassId] {
        &self.targets
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }
}

impl EncodedDataset {
    /// Builds an encoded dataset from raw parts (used by subnetwork training).
    pub fn from_parts(
        data: Vec<f64>,
        cols: usize,
        targets: Vec<ClassId>,
        n_classes: usize,
    ) -> Self {
        assert_eq!(data.len() % cols.max(1), 0, "ragged matrix");
        assert_eq!(
            data.len() / cols.max(1),
            targets.len(),
            "target count mismatch"
        );
        let mut onehot = vec![0.0; targets.len() * n_classes];
        for (i, &t) in targets.iter().enumerate() {
            assert!(
                t < n_classes,
                "target {t} out of range for {n_classes} classes"
            );
            onehot[i * n_classes + t] = 1.0;
        }
        let bits = BinaryInputs::detect(&data, cols);
        EncodedDataset {
            data: Arc::new(data),
            cols,
            targets: Arc::new(targets),
            n_classes,
            onehot: Arc::new(onehot),
            bits: bits.map(Arc::new),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.targets.len()
    }

    /// Number of input columns (bias included).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Input vector of row `i`.
    #[inline]
    pub fn input(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Class target of row `i`.
    #[inline]
    pub fn target(&self, i: usize) -> ClassId {
        self.targets[i]
    }

    /// All targets.
    pub fn targets(&self) -> &[ClassId] {
        &self.targets
    }

    /// All input rows as one contiguous row-major buffer (`rows × cols`).
    #[inline]
    pub fn inputs_flat(&self) -> &[f64] {
        &self.data
    }

    /// One-hot targets as one contiguous row-major buffer
    /// (`rows × n_classes`).
    #[inline]
    pub fn targets_onehot(&self) -> &[f64] {
        &self.onehot
    }

    /// Set-bit layout of the inputs, when they are strictly 0/1.
    #[inline]
    pub fn binary_inputs(&self) -> Option<&BinaryInputs> {
        self.bits.as_deref()
    }

    /// The whole dataset as a dense batch (built once at encoding time;
    /// this is a zero-cost borrow).
    #[inline]
    pub fn batch(&self) -> EncodedBatch<'_> {
        EncodedBatch {
            inputs: &self.data,
            targets_onehot: &self.onehot,
            rows: self.targets.len(),
            cols: self.cols,
            n_classes: self.n_classes,
            bits: self.bits.as_deref(),
        }
    }

    /// An owned, `'static` handle on the batch buffers (`Arc` clones — no
    /// data copy), movable onto worker-pool threads.
    pub fn shared(&self) -> SharedBatch {
        SharedBatch {
            inputs: self.data.clone(),
            onehot: self.onehot.clone(),
            targets: self.targets.clone(),
            bits: self.bits.clone(),
            rows: self.targets.len(),
            cols: self.cols,
            n_classes: self.n_classes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agrawal_layout_matches_table2() {
        let e = Encoder::agrawal();
        assert_eq!(e.n_data_bits(), 86);
        assert_eq!(e.n_inputs(), 87);
        // Paper spans (0-based): salary 0..6, commission 6..13, age 13..19,
        // elevel 19..23, car 23..43, zipcode 43..52, hvalue 52..66,
        // hyears 66..76, loan 76..86.
        assert_eq!(e.span(0), (0, 6));
        assert_eq!(e.span(1), (6, 7));
        assert_eq!(e.span(2), (13, 6));
        assert_eq!(e.span(3), (19, 4));
        assert_eq!(e.span(4), (23, 20));
        assert_eq!(e.span(5), (43, 9));
        assert_eq!(e.span(6), (52, 14));
        assert_eq!(e.span(7), (66, 10));
        assert_eq!(e.span(8), (76, 10));
        assert_eq!(e.bias_bit(), 86);
    }

    #[test]
    fn paper_bit_semantics() {
        let e = Encoder::agrawal();
        // I2 (index 1) <=> salary >= 100000; I5 (index 4) <=> salary >= 25000.
        match e.bit_meaning(1) {
            BitMeaning::Threshold {
                attribute: 0,
                threshold,
                ..
            } => {
                assert_eq!(threshold, 100_000.0)
            }
            m => panic!("unexpected {m:?}"),
        }
        match e.bit_meaning(4) {
            BitMeaning::Threshold {
                attribute: 0,
                threshold,
                ..
            } => {
                assert_eq!(threshold, 25_000.0)
            }
            m => panic!("unexpected {m:?}"),
        }
        // I13 (index 12) <=> commission >= 10000 (lowest commission bit).
        match e.bit_meaning(12) {
            BitMeaning::Threshold {
                attribute: 1,
                threshold,
                absent_value,
                ..
            } => {
                assert_eq!(threshold, 10_000.0);
                assert_eq!(absent_value, Some(0.0));
            }
            m => panic!("unexpected {m:?}"),
        }
        // I15 (index 14) <=> age >= 60; I17 (index 16) <=> age >= 40.
        match e.bit_meaning(14) {
            BitMeaning::Threshold {
                attribute: 2,
                threshold,
                ..
            } => assert_eq!(threshold, 60.0),
            m => panic!("unexpected {m:?}"),
        }
        match e.bit_meaning(16) {
            BitMeaning::Threshold {
                attribute: 2,
                threshold,
                ..
            } => assert_eq!(threshold, 40.0),
            m => panic!("unexpected {m:?}"),
        }
        assert_eq!(e.bit_meaning(86), BitMeaning::Bias);
    }

    #[test]
    fn encode_row_paper_example() {
        let e = Encoder::agrawal();
        // salary 30 000 -> {000011} on I1..I6.
        let row = vec![
            Value::Num(30_000.0),
            Value::Num(0.0),
            Value::Num(45.0),
            Value::Num(2.0),
            Value::Nominal(3),
            Value::Nominal(7),
            Value::Num(250_000.0),
            Value::Num(10.0),
            Value::Num(60_000.0),
        ];
        let x = e.encode_row(&row);
        assert_eq!(&x[0..6], &[0.0, 0.0, 0.0, 0.0, 1.0, 1.0]);
        assert_eq!(&x[6..13], &[0.0; 7]); // commission = 0
        assert_eq!(&x[13..19], &[0.0, 0.0, 0.0, 1.0, 1.0, 1.0]); // age 45 -> >=40,>=30,always
        assert_eq!(&x[19..23], &[0.0, 0.0, 1.0, 1.0]); // elevel 2 -> >=2,>=1
        assert_eq!(x[23 + 3], 1.0); // car code 3
        assert_eq!(x[43 + 7], 1.0); // zip code 7
        assert_eq!(x[86], 1.0); // bias
                                // salary 2 + commission 0 + age 3 + elevel 2 + car 1 + zip 1
                                //  + hvalue 3 + hyears 4 + loan 2 + bias 1 = 19 set bits.
        assert_eq!(x.iter().filter(|&&b| b == 1.0).count(), 19);
    }

    #[test]
    fn attribute_of_bit_boundaries() {
        let e = Encoder::agrawal();
        assert_eq!(e.attribute_of_bit(0), Some(0));
        assert_eq!(e.attribute_of_bit(5), Some(0));
        assert_eq!(e.attribute_of_bit(6), Some(1));
        assert_eq!(e.attribute_of_bit(85), Some(8));
        assert_eq!(e.attribute_of_bit(86), None);
    }

    #[test]
    fn bit_names_are_one_based() {
        let e = Encoder::agrawal();
        assert_eq!(e.bit_name(0), "I1");
        assert_eq!(e.bit_name(86), "I87");
    }

    #[test]
    fn encode_dataset_shapes() {
        let e = Encoder::agrawal();
        let schema = e.schema().clone();
        let mut ds = Dataset::new(schema, vec!["A".into(), "B".into()]);
        let row = vec![
            Value::Num(30_000.0),
            Value::Num(0.0),
            Value::Num(45.0),
            Value::Num(2.0),
            Value::Nominal(3),
            Value::Nominal(7),
            Value::Num(250_000.0),
            Value::Num(10.0),
            Value::Num(60_000.0),
        ];
        ds.push(row.clone(), 0).unwrap();
        ds.push(row, 1).unwrap();
        let enc = e.encode_dataset(&ds);
        assert_eq!(enc.rows(), 2);
        assert_eq!(enc.cols(), 87);
        assert_eq!(enc.target(0), 0);
        assert_eq!(enc.target(1), 1);
        assert_eq!(enc.input(0), enc.input(1));
        assert_eq!(enc.n_classes(), 2);
    }

    #[test]
    fn fit_generic_encoder() {
        use nr_tabular::Attribute;
        let schema = Schema::new(vec![
            Attribute::numeric("x"),
            Attribute::nominal_anon("c", 3),
        ]);
        let mut ds = Dataset::new(schema, vec!["A".into(), "B".into()]);
        for i in 0..10 {
            ds.push(vec![Value::Num(i as f64), Value::Nominal(i % 3)], 0)
                .unwrap();
        }
        let e = Encoder::fit(&ds, 4).unwrap();
        assert_eq!(e.n_data_bits(), 4 + 3);
        let x = e.encode_row(&[Value::Num(9.0), Value::Nominal(2)]);
        assert_eq!(&x[0..4], &[1.0, 1.0, 1.0, 1.0]);
        assert_eq!(&x[4..7], &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn fit_views_matches_fit_on_concatenation() {
        use nr_tabular::Attribute;
        let schema = Schema::new(vec![
            Attribute::numeric("x"),
            Attribute::nominal_anon("c", 3),
        ]);
        let mut ds = Dataset::new(schema, vec!["A".into(), "B".into()]);
        for i in 0..20 {
            ds.push(vec![Value::Num(i as f64 * 1.5), Value::Nominal(i % 3)], 0)
                .unwrap();
        }
        // Two "segments": the numeric range spans both, so a correct
        // multi-view fit must combine them.
        let head = ds.subset(&(0..8).collect::<Vec<_>>());
        let tail = ds.subset(&(8..20).collect::<Vec<_>>());
        let whole = Encoder::fit(&ds, 4).unwrap();
        let segmented = Encoder::fit_views([head.view(), tail.view()], 4).unwrap();
        assert_eq!(whole, segmented);
        // No views is an error, not a panic.
        assert!(Encoder::fit_views(std::iter::empty(), 4).is_err());
    }

    #[test]
    fn batch_view_matches_per_row_accessors() {
        let ds =
            EncodedDataset::from_parts(vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0], 2, vec![0, 2, 1], 3);
        let batch = ds.batch();
        assert_eq!(batch.rows, 3);
        assert_eq!(batch.cols, 2);
        assert_eq!(batch.n_classes, 3);
        for i in 0..3 {
            assert_eq!(&batch.inputs[i * 2..(i + 1) * 2], ds.input(i));
            let onehot = &batch.targets_onehot[i * 3..(i + 1) * 3];
            for (c, &v) in onehot.iter().enumerate() {
                assert_eq!(v, if c == ds.target(i) { 1.0 } else { 0.0 });
            }
        }
        assert_eq!(ds.inputs_flat().len(), 6);
        assert_eq!(ds.targets_onehot().len(), 9);
        // Strictly-0/1 data carries the set-bit layout.
        let bits = batch.bits.expect("binary data");
        assert_eq!(bits.rows(), 3);
        assert_eq!(bits.row(0), &[0]);
        assert_eq!(bits.row(1), &[1]);
        assert_eq!(bits.row(2), &[0, 1]);
    }

    #[test]
    fn non_binary_data_has_no_bit_layout() {
        let ds = EncodedDataset::from_parts(vec![0.5, 1.0], 1, vec![0, 1], 2);
        assert!(ds.binary_inputs().is_none());
        assert!(ds.batch().bits.is_none());
        // An empty binary row still counts as binary.
        let ds = EncodedDataset::from_parts(vec![0.0, 0.0], 2, vec![0], 2);
        let bits = ds.binary_inputs().expect("all zeros is binary");
        assert_eq!(bits.row(0), &[] as &[u32]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_parts_rejects_out_of_range_target() {
        let _ = EncodedDataset::from_parts(vec![1.0, 1.0], 1, vec![0, 2], 2);
    }

    #[test]
    fn new_rejects_mismatched_codings() {
        let e = Encoder::agrawal();
        let err = Encoder::new(e.schema().clone(), vec![]);
        assert!(err.is_err());
    }
}
