//! Binary input coding for NeuroRule (Table 2 of the paper).
//!
//! Before training, the paper discretizes every numeric attribute into
//! subintervals and applies *thermometer coding*: `salary < 25000` becomes
//! `000001`, `salary ∈ [25000, 50000)` becomes `000011`, and so on — the set
//! bits always form a suffix, and the leftmost bit corresponds to the highest
//! interval. Nominal attributes get one-hot codes. A final always-one *bias*
//! input is appended (the paper's 87th input).
//!
//! Decoding matters as much as encoding here: rule extraction produces
//! conjunctions of *literals* (`I13 = 1`, `I17 = 0`) that must be rewritten
//! into attribute conditions (`commission > 0`, `age < 40`), and conjunctions
//! that violate the coding's internal constraints (thermometer monotonicity,
//! one-hot exclusivity) must be recognized as infeasible and discarded — the
//! paper's rule R′₁ is exactly such a case. This crate owns both directions:
//!
//! * [`Encoder`] — schema ⇒ bit layout, row ⇒ `f64` bit vector (+ bias);
//! * [`BitMeaning`] — what each bit asserts about its attribute;
//! * [`literals_to_rule`] — literal conjunction ⇒ [`nr_rules::Rule`]
//!   (or `None` when infeasible);
//! * [`enumerate_feasible`] — all feasible assignments of a bit subset
//!   (used by RX step 3 to tabulate a hidden node's inputs).
//!
//! ```
//! use nr_encode::Encoder;
//! use nr_datagen::{Generator, Function};
//!
//! let enc = Encoder::agrawal();
//! assert_eq!(enc.n_inputs(), 87); // 86 data bits + bias
//! let ds = Generator::new(1).dataset(Function::F2, 10);
//! let encoded = enc.encode_dataset(&ds);
//! assert_eq!(encoded.rows(), 10);
//! ```

#![deny(missing_docs)]

mod coding;
mod encoder;
mod feasible;
mod rewrite;

pub use coding::{AttrCoding, BitMeaning};
pub use encoder::{BinaryInputs, EncodedBatch, EncodedDataset, Encoder, SharedBatch};
pub use feasible::{enumerate_feasible, is_feasible, PatternSpace};
pub use rewrite::{
    literal_implies, literal_is_tautology, literals_to_conditions, literals_to_rule, Literal,
};

/// Errors from the encoding subsystem.
#[derive(Debug, Clone, PartialEq)]
pub enum EncodeError {
    /// A pattern enumeration exceeded the configured cap.
    PatternSpaceTooLarge {
        /// The cap that was exceeded.
        cap: usize,
        /// Lower bound on the size that would have been produced.
        at_least: usize,
    },
    /// Schema/coding mismatch.
    SchemaMismatch(String),
}

impl std::fmt::Display for EncodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EncodeError::PatternSpaceTooLarge { cap, at_least } => {
                write!(f, "pattern space of at least {at_least} exceeds cap {cap}")
            }
            EncodeError::SchemaMismatch(msg) => write!(f, "schema mismatch: {msg}"),
        }
    }
}

impl std::error::Error for EncodeError {}
