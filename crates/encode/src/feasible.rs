//! Feasibility checking and enumeration of input bit patterns.
//!
//! The thermometer/one-hot coding makes most of the `2^n` assignments of a
//! bit subset impossible: thermometer bits must form a suffix of ones,
//! one-hot groups carry at most one set bit, and the bias is constant. RX
//! step 3 exploits this: to tabulate how a pruned hidden node responds to
//! its (few) connected inputs, it enumerates only the *feasible* patterns —
//! the same reasoning the paper uses to discard rule R′₁.

use std::collections::BTreeMap;

use crate::{BitMeaning, EncodeError, Encoder, Literal};

/// All feasible assignments of a set of input bits.
#[derive(Debug, Clone, PartialEq)]
pub struct PatternSpace {
    /// The bit indices, ascending; every pattern is aligned with this order.
    pub bits: Vec<usize>,
    /// Feasible assignments (each of length `bits.len()`).
    pub patterns: Vec<Vec<bool>>,
}

impl PatternSpace {
    /// Number of feasible patterns.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// True when no pattern is feasible (only possible for empty bit sets).
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// The literals asserted by pattern `idx`.
    pub fn literals(&self, idx: usize) -> Vec<Literal> {
        self.bits
            .iter()
            .zip(&self.patterns[idx])
            .map(|(&bit, &value)| Literal::new(bit, value))
            .collect()
    }
}

/// Checks whether a conjunction of literals is satisfiable under the coding
/// constraints (delegates to the rewriting pass, which detects every
/// violation while building conditions).
pub fn is_feasible(enc: &Encoder, literals: &[Literal]) -> bool {
    crate::literals_to_conditions(enc, literals).is_some()
}

/// Per-attribute slice of the requested bits.
enum Part {
    /// Thermometer bits in ascending index order (descending threshold),
    /// with a flag for "lowest selected bit is the always-one base".
    Thermo {
        bits: Vec<usize>,
        last_is_base: bool,
    },
    /// One-hot bits plus whether the all-zero pattern is feasible.
    OneHot { bits: Vec<usize>, allow_none: bool },
    /// The bias bit (always one).
    Bias { bit: usize },
}

impl Part {
    fn n_patterns(&self) -> usize {
        match self {
            Part::Thermo { bits, last_is_base } => bits.len() + usize::from(!last_is_base),
            Part::OneHot { bits, allow_none } => bits.len() + usize::from(*allow_none),
            Part::Bias { .. } => 1,
        }
    }

    /// Emits assignment `k` (0-based) for this part as `(bit, value)` pairs.
    fn assignment(&self, k: usize) -> Vec<(usize, bool)> {
        match self {
            Part::Thermo { bits, last_is_base } => {
                // Feasible assignments are suffixes of ones. Enumerate by the
                // number of trailing ones; when the last bit is the base
                // (always-one) bit, zero trailing ones is impossible.
                let ones = if *last_is_base { k + 1 } else { k };
                bits.iter()
                    .enumerate()
                    .map(|(j, &bit)| (bit, j >= bits.len() - ones))
                    .collect()
            }
            Part::OneHot { bits, allow_none } => {
                let hot = if *allow_none {
                    if k == 0 {
                        None
                    } else {
                        Some(k - 1)
                    }
                } else {
                    Some(k)
                };
                bits.iter()
                    .enumerate()
                    .map(|(j, &bit)| (bit, Some(j) == hot))
                    .collect()
            }
            Part::Bias { bit } => vec![(*bit, true)],
        }
    }
}

/// Enumerates every feasible assignment of `bits`, failing when the space
/// would exceed `cap` patterns.
pub fn enumerate_feasible(
    enc: &Encoder,
    bits: &[usize],
    cap: usize,
) -> Result<PatternSpace, EncodeError> {
    let mut sorted: Vec<usize> = bits.to_vec();
    sorted.sort_unstable();
    sorted.dedup();

    // Group bits per attribute.
    let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    let mut bias_bits = Vec::new();
    for &b in &sorted {
        match enc.bit_meaning(b) {
            BitMeaning::Bias => bias_bits.push(b),
            m => groups
                .entry(m.attribute().expect("non-bias"))
                .or_default()
                .push(b),
        }
    }

    let mut parts: Vec<Part> = Vec::with_capacity(groups.len() + bias_bits.len());
    for (attr, group_bits) in groups {
        match enc.bit_meaning(group_bits[0]) {
            BitMeaning::Threshold { .. } => {
                let last = *group_bits.last().expect("non-empty group");
                let last_is_base = matches!(
                    enc.bit_meaning(last),
                    BitMeaning::Threshold { threshold, .. } if threshold == f64::NEG_INFINITY
                );
                parts.push(Part::Thermo {
                    bits: group_bits,
                    last_is_base,
                });
            }
            BitMeaning::Category { .. } => {
                let cardinality = enc.codings()[attr].bits();
                let allow_none = group_bits.len() < cardinality;
                parts.push(Part::OneHot {
                    bits: group_bits,
                    allow_none,
                });
            }
            BitMeaning::Bias => unreachable!("bias handled above"),
        }
    }
    for b in bias_bits {
        parts.push(Part::Bias { bit: b });
    }

    // Check the product size before materializing.
    let mut size: usize = 1;
    for p in &parts {
        size = size.saturating_mul(p.n_patterns());
        if size > cap {
            return Err(EncodeError::PatternSpaceTooLarge {
                cap,
                at_least: size,
            });
        }
    }

    // Cartesian product over parts.
    let mut assignments: Vec<Vec<(usize, bool)>> = vec![Vec::new()];
    for part in &parts {
        let mut next = Vec::with_capacity(assignments.len() * part.n_patterns());
        for base in &assignments {
            for k in 0..part.n_patterns() {
                let mut a = base.clone();
                a.extend(part.assignment(k));
                next.push(a);
            }
        }
        assignments = next;
    }

    // Align every assignment with the sorted bit order.
    let index_of: BTreeMap<usize, usize> =
        sorted.iter().enumerate().map(|(i, &b)| (b, i)).collect();
    let patterns: Vec<Vec<bool>> = assignments
        .into_iter()
        .map(|a| {
            let mut row = vec![false; sorted.len()];
            for (bit, value) in a {
                row[index_of[&bit]] = value;
            }
            row
        })
        .collect();

    Ok(PatternSpace {
        bits: sorted,
        patterns,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enc() -> Encoder {
        Encoder::agrawal()
    }

    #[test]
    fn thermometer_subset_patterns_are_suffixes() {
        let e = enc();
        // Salary bits I2, I4 (indices 1 and 3): thresholds 100K and 50K.
        let ps = enumerate_feasible(&e, &[1, 3], 100).unwrap();
        assert_eq!(ps.bits, vec![1, 3]);
        let mut pats = ps.patterns.clone();
        pats.sort();
        // (0,0): salary<50K; (0,1): 50K<=s<100K; (1,1): s>=100K. (1,0) infeasible.
        assert_eq!(
            pats,
            vec![vec![false, false], vec![false, true], vec![true, true]]
        );
    }

    #[test]
    fn base_bit_restricts_patterns() {
        let e = enc();
        // Salary base bit I6 (index 5) is constant one.
        let ps = enumerate_feasible(&e, &[3, 5], 100).unwrap();
        for p in &ps.patterns {
            assert!(p[1], "base bit must always be 1 in {p:?}");
        }
        assert_eq!(ps.len(), 2); // salary<50K or >=50K
    }

    #[test]
    fn commission_all_zero_is_feasible() {
        let e = enc();
        // Commission bits I13 (index 12, >=10000) and I10 (index 9, >=40000).
        let ps = enumerate_feasible(&e, &[9, 12], 100).unwrap();
        assert_eq!(ps.len(), 3); // zero, [10K,40K), >=40K
        assert!(ps.patterns.contains(&vec![false, false]));
    }

    #[test]
    fn one_hot_patterns() {
        let e = enc();
        // Two zipcode bits (cardinality 9): either one hot or neither.
        let ps = enumerate_feasible(&e, &[43, 44], 100).unwrap();
        let mut pats = ps.patterns.clone();
        pats.sort();
        assert_eq!(
            pats,
            vec![vec![false, false], vec![false, true], vec![true, false]]
        );
    }

    #[test]
    fn one_hot_full_group_has_no_all_zero() {
        let e = enc();
        let bits: Vec<usize> = (43..52).collect(); // all 9 zipcode bits
        let ps = enumerate_feasible(&e, &bits, 100).unwrap();
        assert_eq!(ps.len(), 9);
        for p in &ps.patterns {
            assert_eq!(p.iter().filter(|&&b| b).count(), 1);
        }
    }

    #[test]
    fn cross_attribute_product() {
        let e = enc();
        // 2 salary bits (3 patterns) x 1 age bit (2 patterns) x bias (1).
        let ps = enumerate_feasible(&e, &[1, 3, 16, e.bias_bit()], 100).unwrap();
        assert_eq!(ps.len(), 6);
        for (i, p) in ps.patterns.iter().enumerate() {
            assert!(p[3], "bias always one");
            assert!(is_feasible(&e, &ps.literals(i)));
        }
    }

    #[test]
    fn cap_is_enforced() {
        let e = enc();
        let bits: Vec<usize> = (0..40).collect();
        let err = enumerate_feasible(&e, &bits, 10).unwrap_err();
        assert!(matches!(
            err,
            EncodeError::PatternSpaceTooLarge { cap: 10, .. }
        ));
    }

    #[test]
    fn every_pattern_is_feasible_and_every_encoding_appears() {
        let e = enc();
        let bits = [1usize, 3, 12, 16];
        let ps = enumerate_feasible(&e, &bits, 1000).unwrap();
        for i in 0..ps.len() {
            assert!(is_feasible(&e, &ps.literals(i)), "pattern {i} infeasible");
        }
        // Sample some real tuples (batch-encoded, no row materialization);
        // their restricted encodings must be listed.
        use nr_datagen::{Function, Generator};
        let ds = Generator::new(5).dataset(Function::F2, 200);
        let encoded = e.encode_dataset(&ds);
        for i in 0..encoded.rows() {
            let x = encoded.input(i);
            let restricted: Vec<bool> = ps.bits.iter().map(|&b| x[b] == 1.0).collect();
            assert!(
                ps.patterns.contains(&restricted),
                "observed pattern {restricted:?} missing from enumeration"
            );
        }
    }

    #[test]
    fn duplicate_bits_are_deduped() {
        let e = enc();
        let ps = enumerate_feasible(&e, &[3, 3, 3], 100).unwrap();
        assert_eq!(ps.bits, vec![3]);
        assert_eq!(ps.len(), 2);
    }

    #[test]
    fn empty_bit_set_has_one_empty_pattern() {
        let e = enc();
        let ps = enumerate_feasible(&e, &[], 100).unwrap();
        assert_eq!(ps.len(), 1);
        assert!(ps.patterns[0].is_empty());
    }
}
