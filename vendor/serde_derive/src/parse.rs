//! Token-tree parser for the derive input (structs with named fields and
//! enums; no generics — the workspace derives on concrete types only).

use crate::{group_with, is_ident, is_punct};
use proc_macro::{Delimiter, TokenStream, TokenTree};

pub(crate) struct Input {
    pub name: String,
    pub untagged: bool,
    pub kind: Kind,
}

pub(crate) enum Kind {
    Struct(Vec<Field>),
    Enum(Vec<Variant>),
}

pub(crate) struct Field {
    pub name: String,
    pub ty: String,
    pub skip: bool,
    pub default: Option<DefaultAttr>,
    pub with: Option<String>,
}

pub(crate) enum DefaultAttr {
    /// `#[serde(default)]` — use `Default::default()`.
    Trait,
    /// `#[serde(default = "path")]` — call `path()`.
    Path(String),
}

pub(crate) struct Variant {
    pub name: String,
    pub shape: Shape,
}

pub(crate) enum Shape {
    Unit,
    Tuple(Vec<String>),
    Struct(Vec<Field>),
}

/// Accumulated `#[serde(...)]` arguments from one attribute site.
#[derive(Default)]
struct SerdeArgs {
    skip: bool,
    default: Option<DefaultAttr>,
    with: Option<String>,
    untagged: bool,
}

pub(crate) fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;

    let item_args = skip_attributes(&tokens, &mut pos);
    skip_visibility(&tokens, &mut pos);

    let is_enum = if is_ident(&tokens[pos], "struct") {
        false
    } else if is_ident(&tokens[pos], "enum") {
        true
    } else {
        panic!(
            "vendored serde_derive supports only structs and enums, got {:?}",
            tokens[pos]
        );
    };
    pos += 1;

    let name = match &tokens[pos] {
        TokenTree::Ident(i) => i.to_string(),
        other => panic!("expected type name, got {other:?}"),
    };
    pos += 1;

    if pos < tokens.len() && is_punct(&tokens[pos], '<') {
        panic!("vendored serde_derive does not support generic types ({name})");
    }

    let body = loop {
        match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("vendored serde_derive does not support tuple structs ({name})")
            }
            Some(_) => pos += 1, // e.g. a where clause would land here
            None => panic!("no body found for {name}"),
        }
    };

    let kind = if is_enum {
        Kind::Enum(parse_variants(body))
    } else {
        Kind::Struct(parse_fields(body))
    };
    Input {
        name,
        untagged: item_args.untagged,
        kind,
    }
}

/// Skips (and inspects) any leading attributes at `pos`.
fn skip_attributes(tokens: &[TokenTree], pos: &mut usize) -> SerdeArgs {
    let mut args = SerdeArgs::default();
    while *pos < tokens.len() && is_punct(&tokens[*pos], '#') {
        if let Some(inner) = group_with(&tokens[*pos + 1], Delimiter::Bracket) {
            parse_serde_attr(inner, &mut args);
        }
        *pos += 2;
    }
    args
}

/// Folds one `#[...]` attribute's arguments into `args` when it is a
/// `serde` attribute; other attributes (docs, derives) are ignored.
fn parse_serde_attr(attr: TokenStream, args: &mut SerdeArgs) {
    let parts: Vec<TokenTree> = attr.into_iter().collect();
    if parts.len() != 2 || !is_ident(&parts[0], "serde") {
        return;
    }
    let Some(list) = group_with(&parts[1], Delimiter::Parenthesis) else {
        return;
    };
    let items: Vec<TokenTree> = list.into_iter().collect();
    let mut i = 0;
    while i < items.len() {
        let key = match &items[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("unexpected token in #[serde(...)]: {other:?}"),
        };
        let value = if i + 2 < items.len() && is_punct(&items[i + 1], '=') {
            let v = match &items[i + 2] {
                TokenTree::Literal(l) => strip_quotes(&l.to_string()),
                other => panic!("expected string literal in #[serde({key} = ...)], got {other:?}"),
            };
            i += 3;
            Some(v)
        } else {
            i += 1;
            None
        };
        // Skip a trailing comma.
        if i < items.len() && is_punct(&items[i], ',') {
            i += 1;
        }
        match (key.as_str(), value) {
            ("skip", None) | ("skip_serializing", None) | ("skip_deserializing", None) => {
                args.skip = true
            }
            ("default", None) => args.default = Some(DefaultAttr::Trait),
            ("default", Some(path)) => args.default = Some(DefaultAttr::Path(path)),
            ("with", Some(path)) => args.with = Some(path),
            ("untagged", None) => args.untagged = true,
            (other, _) => panic!("vendored serde_derive: unsupported serde attribute `{other}`"),
        }
    }
}

fn strip_quotes(lit: &str) -> String {
    lit.trim_matches('"').to_string()
}

fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if *pos < tokens.len() && is_ident(&tokens[*pos], "pub") {
        *pos += 1;
        if *pos < tokens.len() && group_with(&tokens[*pos], Delimiter::Parenthesis).is_some() {
            *pos += 1;
        }
    }
}

/// Parses `name: Type, ...` named fields.
fn parse_fields(body: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut pos = 0;
    let mut fields = Vec::new();
    while pos < tokens.len() {
        let args = skip_attributes(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut pos);
        let name = match &tokens[pos] {
            TokenTree::Ident(i) => i.to_string(),
            other => panic!("expected field name, got {other:?}"),
        };
        pos += 1;
        assert!(
            is_punct(&tokens[pos], ':'),
            "expected `:` after field `{name}`"
        );
        pos += 1;
        let ty = take_type(&tokens, &mut pos);
        fields.push(Field {
            name,
            ty,
            skip: args.skip,
            default: args.default,
            with: args.with,
        });
    }
    fields
}

/// Collects type tokens until a top-level `,` (angle-bracket aware).
fn take_type(tokens: &[TokenTree], pos: &mut usize) -> String {
    let mut depth = 0i32;
    let mut ty = String::new();
    while *pos < tokens.len() {
        let tt = &tokens[*pos];
        if is_punct(tt, '<') {
            depth += 1;
        } else if is_punct(tt, '>') {
            depth -= 1;
        } else if is_punct(tt, ',') && depth == 0 {
            *pos += 1;
            break;
        }
        ty.push_str(&tt.to_string());
        ty.push(' ');
        *pos += 1;
    }
    let ty = ty.trim().to_string();
    assert!(!ty.is_empty(), "empty field type");
    ty
}

/// Parses enum variants.
fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut pos = 0;
    let mut variants = Vec::new();
    while pos < tokens.len() {
        skip_attributes(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = match &tokens[pos] {
            TokenTree::Ident(i) => i.to_string(),
            other => panic!("expected variant name, got {other:?}"),
        };
        pos += 1;
        let shape = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                Shape::Tuple(parse_tuple_types(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                Shape::Struct(parse_fields(g.stream()))
            }
            _ => Shape::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the trailing comma.
        if pos < tokens.len() && is_punct(&tokens[pos], '=') {
            pos += 1;
            while pos < tokens.len() && !is_punct(&tokens[pos], ',') {
                pos += 1;
            }
        }
        if pos < tokens.len() && is_punct(&tokens[pos], ',') {
            pos += 1;
        }
        variants.push(Variant { name, shape });
    }
    variants
}

/// Splits tuple-variant field types on top-level commas.
fn parse_tuple_types(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut pos = 0;
    let mut types = Vec::new();
    while pos < tokens.len() {
        skip_attributes(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut pos);
        types.push(take_type(&tokens, &mut pos));
    }
    types
}
