//! Vendored `#[derive(Serialize, Deserialize)]` macros.
//!
//! Implemented without `syn`/`quote` (the build environment is offline):
//! the item is parsed directly from its token stream and the generated
//! impls are rendered as strings. Supported shapes — everything this
//! workspace derives on:
//!
//! * structs with named fields;
//! * enums with unit, tuple and struct variants (externally tagged, like
//!   upstream serde), plus `#[serde(untagged)]` for unit/newtype variants;
//! * field attributes `#[serde(skip)]`, `#[serde(default)]`,
//!   `#[serde(default = "path")]`, `#[serde(with = "module")]`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

mod parse;

use parse::{DefaultAttr, Input, Kind, Shape};

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse::parse_input(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive produced invalid Serialize impl")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse::parse_input(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive produced invalid Deserialize impl")
}

// ---------------------------------------------------------------------------
// Serialize codegen
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Input) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(fields) => {
            let mut out = String::new();
            out.push_str("use ::serde::ser::SerializeStruct as _;\n");
            let live: Vec<_> = fields.iter().filter(|f| !f.skip).collect();
            out.push_str(&format!(
                "let mut __st = __serializer.serialize_struct({name:?}, {})?;\n",
                live.len()
            ));
            for f in &live {
                out.push_str(&serialize_field_stmt(
                    &f.name,
                    &format!("&self.{}", f.name),
                    &f.ty,
                    f.with.as_deref(),
                ));
            }
            out.push_str("__st.end()\n");
            out
        }
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for (idx, v) in variants.iter().enumerate() {
                let vname = &v.name;
                let arm = match (&v.shape, item.untagged) {
                    (Shape::Unit, false) => format!(
                        "{name}::{vname} => __serializer.serialize_unit_variant({name:?}, {idx}u32, {vname:?}),\n"
                    ),
                    (Shape::Unit, true) => format!("{name}::{vname} => __serializer.serialize_unit(),\n"),
                    (Shape::Tuple(tys), false) if tys.len() == 1 => format!(
                        "{name}::{vname}(__f0) => __serializer.serialize_newtype_variant({name:?}, {idx}u32, {vname:?}, __f0),\n"
                    ),
                    (Shape::Tuple(tys), true) if tys.len() == 1 => {
                        format!("{name}::{vname}(__f0) => ::serde::Serialize::serialize(__f0, __serializer),\n")
                    }
                    (Shape::Tuple(tys), false) => {
                        let binders: Vec<String> = (0..tys.len()).map(|i| format!("__f{i}")).collect();
                        let mut arm = format!("{name}::{vname}({}) => {{\n", binders.join(", "));
                        arm.push_str("use ::serde::ser::SerializeTupleVariant as _;\n");
                        arm.push_str(&format!(
                            "let mut __tv = __serializer.serialize_tuple_variant({name:?}, {idx}u32, {vname:?}, {})?;\n",
                            tys.len()
                        ));
                        for b in &binders {
                            arm.push_str(&format!("__tv.serialize_field({b})?;\n"));
                        }
                        arm.push_str("__tv.end()\n}\n");
                        arm
                    }
                    (Shape::Tuple(tys), true) => {
                        let binders: Vec<String> = (0..tys.len()).map(|i| format!("__f{i}")).collect();
                        let mut arm = format!("{name}::{vname}({}) => {{\n", binders.join(", "));
                        arm.push_str("use ::serde::ser::SerializeTuple as _;\n");
                        arm.push_str(&format!(
                            "let mut __tu = __serializer.serialize_tuple({})?;\n",
                            tys.len()
                        ));
                        for b in &binders {
                            arm.push_str(&format!("__tu.serialize_element({b})?;\n"));
                        }
                        arm.push_str("__tu.end()\n}\n");
                        arm
                    }
                    (Shape::Struct(fields), untagged) => {
                        let live: Vec<_> = fields.iter().filter(|f| !f.skip).collect();
                        let binders: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let mut arm =
                            format!("{name}::{vname} {{ {} }} => {{\n", binders.join(", "));
                        if untagged {
                            arm.push_str("use ::serde::ser::SerializeStruct as _;\n");
                            arm.push_str(&format!(
                                "let mut __st = __serializer.serialize_struct({vname:?}, {})?;\n",
                                live.len()
                            ));
                        } else {
                            arm.push_str("use ::serde::ser::SerializeStructVariant as _;\n");
                            arm.push_str(&format!(
                                "let mut __st = __serializer.serialize_struct_variant({name:?}, {idx}u32, {vname:?}, {})?;\n",
                                live.len()
                            ));
                        }
                        for f in &live {
                            arm.push_str(&serialize_field_stmt(&f.name, &f.name.clone(), &f.ty, f.with.as_deref()));
                        }
                        arm.push_str("__st.end()\n}\n");
                        arm
                    }
                };
                arms.push_str(&arm);
            }
            let allow_unused = if variants.iter().all(|v| matches!(v.shape, Shape::Unit)) {
                "#[allow(unused_variables)]\n"
            } else {
                ""
            };
            format!("{allow_unused}match self {{\n{arms}}}\n")
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(non_snake_case, unused_mut, unused_imports, clippy::all)]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn serialize<__S: ::serde::Serializer>(&self, __serializer: __S) \
         -> ::std::result::Result<__S::Ok, __S::Error> {{\n{body}}}\n}}\n"
    )
}

/// One `serialize_field` statement; `expr` is a `&Ty` expression.
fn serialize_field_stmt(fname: &str, expr: &str, ty: &str, with: Option<&str>) -> String {
    match with {
        None => format!("__st.serialize_field({fname:?}, {expr})?;\n"),
        Some(module) => format!(
            "{{\n\
             struct __SerdeWith<'__a>(&'__a ({ty}));\n\
             impl<'__a> ::serde::Serialize for __SerdeWith<'__a> {{\n\
             fn serialize<__S2: ::serde::Serializer>(&self, __s: __S2) \
             -> ::std::result::Result<__S2::Ok, __S2::Error> {{ {module}::serialize(self.0, __s) }}\n\
             }}\n\
             __st.serialize_field({fname:?}, &__SerdeWith({expr}))?;\n\
             }}\n"
        ),
    }
}

// ---------------------------------------------------------------------------
// Deserialize codegen
// ---------------------------------------------------------------------------

fn gen_deserialize(item: &Input) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(fields) => struct_from_content(name, name, fields, "__content", "__D::Error"),
        Kind::Enum(variants) if item.untagged => {
            let mut out = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.shape {
                    Shape::Unit => out.push_str(&format!(
                        "if matches!(__content, ::serde::__private::Content::Null) \
                         {{ return ::std::result::Result::Ok({name}::{vname}); }}\n"
                    )),
                    Shape::Tuple(tys) if tys.len() == 1 => out.push_str(&format!(
                        "if let ::std::result::Result::Ok(__v) = \
                         ::serde::de::from_subtree::<{ty}, ::serde::__private::Error>(__content.clone()) \
                         {{ return ::std::result::Result::Ok({name}::{vname}(__v)); }}\n",
                        ty = tys[0]
                    )),
                    _ => panic!(
                        "vendored serde_derive: untagged enums support unit and newtype variants only ({name}::{vname})"
                    ),
                }
            }
            out.push_str(&format!(
                "::std::result::Result::Err(<__D::Error as ::serde::de::Error>::custom(\
                 \"data did not match any variant of untagged enum {name}\"))\n"
            ));
            out
        }
        Kind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.shape {
                    Shape::Unit => unit_arms.push_str(&format!(
                        "{vname:?} => ::std::result::Result::Ok({name}::{vname}),\n"
                    )),
                    Shape::Tuple(tys) if tys.len() == 1 => data_arms.push_str(&format!(
                        "{vname:?} => ::std::result::Result::Ok({name}::{vname}(\
                         ::serde::de::from_subtree::<{ty}, __D::Error>(__val)?)),\n",
                        ty = tys[0]
                    )),
                    Shape::Tuple(tys) => {
                        let n = tys.len();
                        let mut fields = String::new();
                        for ty in tys {
                            fields.push_str(&format!(
                                "::serde::de::from_subtree::<{ty}, __D::Error>(__it.next().unwrap())?, "
                            ));
                        }
                        data_arms.push_str(&format!(
                            "{vname:?} => match __val {{\n\
                             ::serde::__private::Content::Seq(__items) if __items.len() == {n} => {{\n\
                             let mut __it = __items.into_iter();\n\
                             ::std::result::Result::Ok({name}::{vname}({fields}))\n\
                             }}\n\
                             __other => ::std::result::Result::Err(<__D::Error as ::serde::de::Error>::custom(\
                             \"expected a sequence of length {n} for variant {vname}\")),\n\
                             }},\n"
                        ));
                    }
                    Shape::Struct(fields) => {
                        let inner = struct_from_content(
                            name,
                            &format!("{name}::{vname}"),
                            fields,
                            "__val",
                            "__D::Error",
                        );
                        data_arms.push_str(&format!("{vname:?} => {{ {inner} }},\n"));
                    }
                }
            }
            format!(
                "match __content {{\n\
                 ::serde::__private::Content::Str(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => ::std::result::Result::Err(<__D::Error as ::serde::de::Error>::custom(\
                 format!(\"unknown variant `{{__other}}` of enum {name}\"))),\n\
                 }},\n\
                 ::serde::__private::Content::Map(__m) if __m.len() == 1 => {{\n\
                 let (__tag, __val) = __m.into_iter().next().unwrap();\n\
                 #[allow(unused_variables)]\n\
                 match __tag.as_str() {{\n\
                 {data_arms}\
                 __other => ::std::result::Result::Err(<__D::Error as ::serde::de::Error>::custom(\
                 format!(\"unknown variant `{{__other}}` of enum {name}\"))),\n\
                 }}\n\
                 }},\n\
                 __other => ::std::result::Result::Err(<__D::Error as ::serde::de::Error>::custom(\
                 format!(\"invalid type for enum {name}: {{}}\", __other.kind()))),\n\
                 }}\n"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(non_snake_case, unused_mut, unused_imports, clippy::all)]\n\
         impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
         fn deserialize<__D: ::serde::Deserializer<'de>>(__deserializer: __D) \
         -> ::std::result::Result<Self, __D::Error> {{\n\
         let __content = ::serde::Deserializer::take_content(__deserializer)?;\n\
         {body}}}\n}}\n"
    )
}

/// Parses a struct (or struct variant) out of a `Content::Map` expression.
///
/// `constructor` is e.g. `Foo` or `Foo::Variant`; evaluates to
/// `Result<Foo, {err}>`.
fn struct_from_content(
    type_name: &str,
    constructor: &str,
    fields: &[parse::Field],
    content_var: &str,
    err: &str,
) -> String {
    let mut out =
        format!("match {content_var} {{\n::serde::__private::Content::Map(__entries) => {{\n");
    let mut init = String::new();
    for f in fields {
        let fname = &f.name;
        let ty = &f.ty;
        let missing = match (&f.default, f.skip) {
            (Some(DefaultAttr::Path(path)), _) => format!("{path}()"),
            (Some(DefaultAttr::Trait), _) | (None, true) => {
                "::std::default::Default::default()".to_string()
            }
            (None, false) => format!(
                "return ::std::result::Result::Err(<{err} as ::serde::de::Error>::missing_field({fname:?}))"
            ),
        };
        if f.skip {
            out.push_str(&format!("let __field_{fname}: {ty} = {missing};\n"));
        } else {
            let found = match &f.with {
                None => format!("::serde::de::from_subtree::<{ty}, {err}>(__v.clone())?"),
                Some(module) => format!(
                    "{module}::deserialize(::serde::__private::ContentDeserializer::new(__v.clone()))\
                     .map_err(<{err} as ::serde::de::Error>::custom)?"
                ),
            };
            out.push_str(&format!(
                "let __field_{fname}: {ty} = match __entries.iter().find(|(__k, _)| __k == {fname:?}) {{\n\
                 ::std::option::Option::Some((_, __v)) => {found},\n\
                 ::std::option::Option::None => {missing},\n\
                 }};\n"
            ));
        }
        init.push_str(&format!("{fname}: __field_{fname}, "));
    }
    out.push_str(&format!(
        "::std::result::Result::Ok({constructor} {{ {init} }})\n}}\n"
    ));
    out.push_str(&format!(
        "__other => ::std::result::Result::Err(<{err} as ::serde::de::Error>::custom(\
         format!(\"invalid type for struct {type_name}: {{}}\", __other.kind()))),\n}}\n"
    ));
    out
}

// ---------------------------------------------------------------------------
// Shared helper exposed to the parse module
// ---------------------------------------------------------------------------

pub(crate) fn is_punct(tt: &TokenTree, c: char) -> bool {
    matches!(tt, TokenTree::Punct(p) if p.as_char() == c)
}

pub(crate) fn is_ident(tt: &TokenTree, s: &str) -> bool {
    matches!(tt, TokenTree::Ident(i) if i.to_string() == s)
}

pub(crate) fn group_with(tt: &TokenTree, delim: Delimiter) -> Option<TokenStream> {
    match tt {
        TokenTree::Group(g) if g.delimiter() == delim => Some(g.stream()),
        _ => None,
    }
}
