//! Minimal, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the pieces of the rand
//! API this workspace actually uses are reimplemented here: a seedable
//! deterministic generator ([`rngs::StdRng`]), uniform range sampling
//! ([`Rng::gen_range`]) and Fisher–Yates shuffling ([`seq::SliceRandom`]).
//! The stream differs from upstream rand's ChaCha-based `StdRng`; the
//! workspace only relies on determinism, not on a particular stream.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniform `f64` in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                self.start + (self.end - self.start) * rng.next_f64() as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                lo + (hi - lo) * rng.next_f64() as $t
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic generator: SplitMix64-seeded xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling of slices (Fisher–Yates).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Returns one uniformly chosen element, `None` when empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(-0.5..=0.5);
            assert!((-0.5..=0.5).contains(&x));
            let n = rng.gen_range(1..=20u32);
            assert!((1..=20).contains(&n));
            let m = rng.gen_range(0..5usize);
            assert!(m < 5);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle must move something");
    }
}
