//! Minimal, dependency-free stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace's property tests use: range
//! strategies over integers and floats, tuple strategies, `prop_map` /
//! `prop_flat_map`, `collection::vec` / `collection::btree_set`,
//! `option::of`, the `proptest!` macro with an optional
//! `#![proptest_config(...)]` header, and `prop_assert*` macros.
//!
//! No shrinking: a failing case panics with the generated inputs printed
//! via the assertion message, which is enough for deterministic replays
//! (the RNG stream is a pure function of test name and case index).

use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

pub mod test_runner;

use test_runner::TestRng;

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of values of type [`Strategy::Value`].
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).gen_value(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn gen_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn gen_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.gen_value(rng)).gen_value(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.next_f64() as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                lo + (hi - lo) * rng.next_f64() as $t
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident . $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6);
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8);
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9);
}

/// A length specification for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    /// Minimum length (inclusive).
    pub min: usize,
    /// Maximum length (inclusive).
    pub max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::*;

    /// Strategy for `Vec<T>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for `BTreeSet<T>` with a target size drawn from `size`.
    ///
    /// If the element domain is too small to reach the drawn size, the set
    /// is returned as large as the strategy managed to make it.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.usize_in(self.size.min, self.size.max);
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = rng.usize_in(self.size.min, self.size.max);
            let mut set = BTreeSet::new();
            // Bounded retries in case the element domain is small.
            for _ in 0..target.saturating_mul(20).max(64) {
                if set.len() >= target {
                    break;
                }
                set.insert(self.element.gen_value(rng));
            }
            set
        }
    }
}

/// Option strategies.
pub mod option {
    use super::*;

    /// Strategy yielding `None` 25% of the time (like upstream's default).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 3 == 0 {
                None
            } else {
                Some(self.inner.gen_value(rng))
            }
        }
    }
}

/// Defines property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(40))]
///
///     #[test]
///     fn holds(x in 0u32..10, (a, b) in (0f64..1.0, 0f64..1.0)) {
///         prop_assert!(x < 10 && a < 1.0 && b < 1.0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not public API.
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        file!(),
                        stringify!($name),
                        __case,
                    );
                    $( let $pat = $crate::Strategy::gen_value(&($strat), &mut __rng); )+
                    { $body }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}
