//! Deterministic RNG for the vendored proptest.

/// SplitMix64-seeded xoshiro256++ stream, derived from the test's file,
/// name and case index so every run (and every reordering of tests) sees
/// the same sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

impl TestRng {
    /// RNG for one generated case of one test.
    pub fn for_case(file: &str, test_name: &str, case: u32) -> Self {
        let seed = fnv1a(file.as_bytes())
            ^ fnv1a(test_name.as_bytes()).rotate_left(17)
            ^ (u64::from(case)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Self::from_seed(seed)
    }

    /// RNG from a raw seed.
    pub fn from_seed(seed: u64) -> Self {
        let mut state = seed;
        TestRng {
            s: [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ],
        }
    }

    /// Next 64-bit word (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `usize` in `[lo, hi]`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        lo + (self.next_u64() as usize) % (hi - lo + 1)
    }
}
