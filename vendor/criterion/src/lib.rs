//! Minimal, dependency-free stand-in for the `criterion` crate.
//!
//! Implements the API surface this workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`, `BenchmarkId`,
//! `black_box` and the `criterion_group!`/`criterion_main!` macros — with a
//! simple timing loop instead of criterion's statistics: each benchmark is
//! warmed up once, then run for a fixed number of timed iterations, and the
//! mean wall-clock time is printed. Good enough to keep `cargo bench`
//! meaningful while `cargo build --benches` stays the CI gate.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of the standard opaque value barrier.
pub use std::hint::black_box;

/// Entry point handed to every benchmark function.
#[derive(Debug)]
pub struct Criterion {
    /// Iterations per measured benchmark (after one warm-up call).
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Begins a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.sample_size, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_bench(&label, self.effective_sample_size(), f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_bench(&label, self.effective_sample_size(), |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}

    fn effective_sample_size(&self) -> usize {
        self.sample_size.unwrap_or(self.criterion.sample_size)
    }
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Conversion into a benchmark label (so both `&str` and [`BenchmarkId`]
/// are accepted, like upstream).
pub trait IntoBenchmarkId {
    /// The label.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.0
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Timing harness handed to the benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f`, keeping its result opaque to the optimizer.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.elapsed += start.elapsed();
        self.iters += 1;
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    // One warm-up call, untimed.
    let mut warmup = Bencher::default();
    f(&mut warmup);

    let mut bencher = Bencher::default();
    for _ in 0..sample_size.max(1) {
        f(&mut bencher);
    }
    if bencher.iters == 0 {
        eprintln!("  {label:<40} (no iterations)");
    } else {
        let mean = bencher.elapsed / u32::try_from(bencher.iters).unwrap_or(u32::MAX);
        eprintln!("  {label:<40} {mean:>12.2?}/iter ({} iters)", bencher.iters);
    }
}

/// Declares a benchmark group runner, like upstream criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point, like upstream criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
