//! Minimal, dependency-free stand-in for the `criterion` crate.
//!
//! Implements the API surface this workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`, `BenchmarkId`,
//! `Throughput`, `black_box` and the `criterion_group!`/`criterion_main!`
//! macros — with a simple timing loop instead of criterion's statistics:
//! each benchmark is warmed up once, then timed for a fixed number of
//! samples, and the per-sample median and mean are printed.
//!
//! Beyond printing, every run appends to an in-process registry and
//! `criterion_main!` writes the registry out as `BENCH_<bench>.json`
//! (median ns/iter, mean ns/iter, and — when a [`Throughput`] is set —
//! rows/sec), so the perf trajectory is machine-readable across PRs. Two
//! environment variables steer the harness:
//!
//! * `NR_BENCH_QUICK=1` — smoke mode: few samples, and benches may shrink
//!   their workloads via [`quick_mode`]. Used by the CI bench-smoke job.
//! * `NR_BENCH_OUT_DIR` — where to write `BENCH_*.json` (default: the
//!   current directory, i.e. the bench package root under `cargo bench`).

use std::fmt::Display;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Re-export of the standard opaque value barrier.
pub use std::hint::black_box;

/// True when the `NR_BENCH_QUICK` environment variable asks for smoke-test
/// benches (fewer samples; benches may also shrink their workloads).
pub fn quick_mode() -> bool {
    std::env::var("NR_BENCH_QUICK")
        .map(|v| v != "0" && !v.is_empty())
        .unwrap_or(false)
}

/// One finished benchmark measurement, kept for the JSON report.
#[derive(Debug, Clone)]
struct Record {
    label: String,
    median_ns: f64,
    mean_ns: f64,
    samples: usize,
    /// Elements processed per iteration, when declared via [`Throughput`].
    elements: Option<u64>,
}

static RESULTS: Mutex<Vec<Record>> = Mutex::new(Vec::new());

/// Units processed by one benchmark iteration, enabling rows/sec output
/// (mirrors upstream criterion's `Throughput`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements (e.g. dataset rows) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

impl Throughput {
    fn elements(self) -> Option<u64> {
        match self {
            Throughput::Elements(n) => Some(n),
            Throughput::Bytes(_) => None,
        }
    }
}

/// Entry point handed to every benchmark function.
#[derive(Debug)]
pub struct Criterion {
    /// Samples per measured benchmark (after one warm-up call).
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: if quick_mode() { 3 } else { 10 },
        }
    }
}

impl Criterion {
    /// Begins a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: None,
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.sample_size, None, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Declares how much data one iteration of the following benchmarks
    /// processes; enables rows/sec in the printed and JSON output.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_bench(&label, self.effective_sample_size(), self.throughput, f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_bench(&label, self.effective_sample_size(), self.throughput, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group.
    pub fn finish(self) {}

    fn effective_sample_size(&self) -> usize {
        let configured = self.sample_size.unwrap_or(self.criterion.sample_size);
        if quick_mode() {
            configured.min(3)
        } else {
            configured
        }
    }
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Conversion into a benchmark label (so both `&str` and [`BenchmarkId`]
/// are accepted, like upstream).
pub trait IntoBenchmarkId {
    /// The label.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.0
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Timing harness handed to the benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f`, keeping its result opaque to the optimizer.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.elapsed += start.elapsed();
        self.iters += 1;
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    // One warm-up call, untimed.
    let mut warmup = Bencher::default();
    f(&mut warmup);

    // One sample = one invocation of the closure (normally one `b.iter`
    // call); per-sample ns/iter feed the median.
    let mut per_iter_ns: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size.max(1) {
        let mut bencher = Bencher::default();
        f(&mut bencher);
        if bencher.iters > 0 {
            per_iter_ns.push(bencher.elapsed.as_nanos() as f64 / bencher.iters as f64);
        }
    }
    if per_iter_ns.is_empty() {
        eprintln!("  {label:<44} (no iterations)");
        return;
    }
    per_iter_ns.sort_by(f64::total_cmp);
    let median_ns = per_iter_ns[per_iter_ns.len() / 2];
    let mean_ns = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;
    let elements = throughput.and_then(Throughput::elements);
    let rate = elements
        .map(|n| format!("  {:>12.0} rows/sec", n as f64 / (median_ns / 1e9)))
        .unwrap_or_default();
    eprintln!(
        "  {label:<44} median {:>12.2?}/iter ({} samples){rate}",
        Duration::from_nanos(median_ns as u64),
        per_iter_ns.len(),
    );
    RESULTS.lock().unwrap().push(Record {
        label: label.to_string(),
        median_ns,
        mean_ns,
        samples: per_iter_ns.len(),
        elements,
    });
}

/// Writes the accumulated measurements of this bench binary as
/// `BENCH_<name>.json` (called by `criterion_main!` after all groups ran).
///
/// `<name>` is the bench target name, recovered from the executable file
/// name with cargo's trailing `-<hash>` stripped. The output directory is
/// `NR_BENCH_OUT_DIR` when set, else the current directory.
pub fn write_report() {
    let results = RESULTS.lock().unwrap();
    if results.is_empty() {
        return;
    }
    let name = bench_name().unwrap_or_else(|| "unknown".to_string());
    let dir = std::env::var("NR_BENCH_OUT_DIR").unwrap_or_else(|_| ".".to_string());
    let path = std::path::Path::new(&dir).join(format!("BENCH_{name}.json"));
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"bench\": \"{name}\",\n"));
    json.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let rows_per_sec = r
            .elements
            .map(|n| {
                format!(
                    ", \"elements\": {n}, \"rows_per_sec\": {:.1}",
                    n as f64 / (r.median_ns / 1e9)
                )
            })
            .unwrap_or_default();
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"median_ns\": {:.1}, \"mean_ns\": {:.1}, \"samples\": {}{rows_per_sec}}}{}\n",
            r.label.replace('"', "'"),
            r.median_ns,
            r.mean_ns,
            r.samples,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");
    match std::fs::write(&path, json) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

/// Bench target name from the executable path (strips cargo's `-<hash>`).
fn bench_name() -> Option<String> {
    let exe = std::env::current_exe().ok()?;
    Some(strip_cargo_hash(exe.file_stem()?.to_str()?))
}

/// Strips the 16-hex-digit `-<hash>` suffix cargo appends to test and
/// bench executables.
fn strip_cargo_hash(stem: &str) -> String {
    match stem.rsplit_once('-') {
        Some((base, suffix))
            if !base.is_empty()
                && suffix.len() == 16
                && suffix.bytes().all(|b| b.is_ascii_hexdigit()) =>
        {
            base.to_string()
        }
        _ => stem.to_string(),
    }
}

/// Declares a benchmark group runner, like upstream criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point, like upstream criterion; also writes
/// the machine-readable `BENCH_<name>.json` report on exit.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::write_report();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_name_strips_cargo_hash() {
        assert_eq!(strip_cargo_hash("inference-0a1b2c3d4e5f6789"), "inference");
        assert_eq!(strip_cargo_hash("training"), "training");
        assert_eq!(strip_cargo_hash("two-words-0a1b2c3d4e5f6789"), "two-words");
        assert_eq!(strip_cargo_hash("not-a-hash-suffix"), "not-a-hash-suffix");
    }

    #[test]
    fn throughput_elements_accessor() {
        assert_eq!(Throughput::Elements(5).elements(), Some(5));
        assert_eq!(Throughput::Bytes(5).elements(), None);
    }
}
