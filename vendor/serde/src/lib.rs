//! Minimal, dependency-free stand-in for the `serde` crate.
//!
//! The build environment has no network access, so this vendored crate
//! reimplements the subset of serde's API surface the workspace uses:
//!
//! * the [`Serialize`] / [`Deserialize`] traits with upstream-shaped
//!   signatures (`fn serialize<S: Serializer>(…) -> Result<S::Ok, S::Error>`),
//!   so hand-written codecs such as `#[serde(with = "…")]` modules compile
//!   unchanged;
//! * the [`Serializer`] / [`Deserializer`] traits. Unlike upstream, the
//!   deserializer side is tree-based: a [`content::Content`] value (the
//!   self-describing data model) is produced once and traversed by the
//!   `Deserialize` impls. This is equivalent to upstream's private
//!   `Content` buffering and is all a JSON-backed workspace needs;
//! * `derive` feature: re-exports the `Serialize`/`Deserialize` derive
//!   macros from the vendored `serde_derive`.

pub mod content;
pub mod de;
pub mod ser;

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Helpers referenced by derive-generated code. Not a stable API.
pub mod __private {
    pub use crate::content::{Content, ContentDeserializer, ContentSerializer, Error};
}
