//! The self-describing data model shared by the serializer and the
//! deserializer, plus the one concrete implementation of each trait.

use std::fmt;

/// A serialized value: the common tree both sides of the bridge speak.
///
/// Numbers are split the way JSON implementations usually split them —
/// signed/unsigned integers are kept exact, everything else is `f64`.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// `null` / `None` / unit.
    Null,
    /// Boolean.
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Signed (negative) integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence (array / tuple).
    Seq(Vec<Content>),
    /// Map with string keys, in insertion order (struct / map / enum tag).
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Looks up a key in a [`Content::Map`].
    pub fn get(&self, key: &str) -> Option<&Content> {
        match self {
            Content::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// A short description of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::U64(_) | Content::I64(_) | Content::F64(_) => "number",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }
}

/// The single concrete error type used across the vendored serde stack.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl crate::ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl crate::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

// ---------------------------------------------------------------------------
// Serializer: builds a Content tree.
// ---------------------------------------------------------------------------

/// [`crate::Serializer`] that produces a [`Content`] tree.
#[derive(Debug, Default, Clone, Copy)]
pub struct ContentSerializer;

impl ContentSerializer {
    /// Creates a serializer.
    pub fn new() -> Self {
        ContentSerializer
    }
}

/// Serializes any value to a [`Content`] tree.
pub fn to_content<T: crate::Serialize + ?Sized>(value: &T) -> Result<Content, Error> {
    value.serialize(ContentSerializer)
}

/// In-progress sequence/tuple.
#[derive(Debug)]
pub struct SeqBuilder {
    items: Vec<Content>,
}

/// In-progress map.
#[derive(Debug)]
pub struct MapBuilder {
    entries: Vec<(String, Content)>,
}

/// In-progress struct (or struct variant, carrying the wrapping tag).
#[derive(Debug)]
pub struct StructBuilder {
    variant: Option<&'static str>,
    entries: Vec<(String, Content)>,
}

/// In-progress tuple variant.
#[derive(Debug)]
pub struct TupleVariantBuilder {
    variant: &'static str,
    items: Vec<Content>,
}

impl crate::Serializer for ContentSerializer {
    type Ok = Content;
    type Error = Error;
    type SerializeSeq = SeqBuilder;
    type SerializeTuple = SeqBuilder;
    type SerializeMap = MapBuilder;
    type SerializeStruct = StructBuilder;
    type SerializeTupleVariant = TupleVariantBuilder;
    type SerializeStructVariant = StructBuilder;

    fn serialize_bool(self, v: bool) -> Result<Content, Error> {
        Ok(Content::Bool(v))
    }
    fn serialize_i64(self, v: i64) -> Result<Content, Error> {
        Ok(if v >= 0 {
            Content::U64(v as u64)
        } else {
            Content::I64(v)
        })
    }
    fn serialize_u64(self, v: u64) -> Result<Content, Error> {
        Ok(Content::U64(v))
    }
    fn serialize_f64(self, v: f64) -> Result<Content, Error> {
        Ok(Content::F64(v))
    }
    fn serialize_char(self, v: char) -> Result<Content, Error> {
        Ok(Content::Str(v.to_string()))
    }
    fn serialize_str(self, v: &str) -> Result<Content, Error> {
        Ok(Content::Str(v.to_string()))
    }
    fn serialize_unit(self) -> Result<Content, Error> {
        Ok(Content::Null)
    }
    fn serialize_none(self) -> Result<Content, Error> {
        Ok(Content::Null)
    }
    fn serialize_some<T: crate::Serialize + ?Sized>(self, v: &T) -> Result<Content, Error> {
        v.serialize(self)
    }
    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
    ) -> Result<Content, Error> {
        Ok(Content::Str(variant.to_string()))
    }
    fn serialize_newtype_struct<T: crate::Serialize + ?Sized>(
        self,
        _name: &'static str,
        v: &T,
    ) -> Result<Content, Error> {
        v.serialize(self)
    }
    fn serialize_newtype_variant<T: crate::Serialize + ?Sized>(
        self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
        v: &T,
    ) -> Result<Content, Error> {
        Ok(Content::Map(vec![(
            variant.to_string(),
            v.serialize(self)?,
        )]))
    }
    fn serialize_seq(self, len: Option<usize>) -> Result<SeqBuilder, Error> {
        Ok(SeqBuilder {
            items: Vec::with_capacity(len.unwrap_or(0)),
        })
    }
    fn serialize_tuple(self, len: usize) -> Result<SeqBuilder, Error> {
        Ok(SeqBuilder {
            items: Vec::with_capacity(len),
        })
    }
    fn serialize_map(self, len: Option<usize>) -> Result<MapBuilder, Error> {
        Ok(MapBuilder {
            entries: Vec::with_capacity(len.unwrap_or(0)),
        })
    }
    fn serialize_struct(self, _name: &'static str, len: usize) -> Result<StructBuilder, Error> {
        Ok(StructBuilder {
            variant: None,
            entries: Vec::with_capacity(len),
        })
    }
    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<TupleVariantBuilder, Error> {
        Ok(TupleVariantBuilder {
            variant,
            items: Vec::with_capacity(len),
        })
    }
    fn serialize_struct_variant(
        self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<StructBuilder, Error> {
        Ok(StructBuilder {
            variant: Some(variant),
            entries: Vec::with_capacity(len),
        })
    }
}

impl crate::ser::SerializeSeq for SeqBuilder {
    type Ok = Content;
    type Error = Error;
    fn serialize_element<T: crate::Serialize + ?Sized>(&mut self, v: &T) -> Result<(), Error> {
        self.items.push(v.serialize(ContentSerializer)?);
        Ok(())
    }
    fn end(self) -> Result<Content, Error> {
        Ok(Content::Seq(self.items))
    }
}

impl crate::ser::SerializeTuple for SeqBuilder {
    type Ok = Content;
    type Error = Error;
    fn serialize_element<T: crate::Serialize + ?Sized>(&mut self, v: &T) -> Result<(), Error> {
        crate::ser::SerializeSeq::serialize_element(self, v)
    }
    fn end(self) -> Result<Content, Error> {
        crate::ser::SerializeSeq::end(self)
    }
}

impl crate::ser::SerializeMap for MapBuilder {
    type Ok = Content;
    type Error = Error;
    fn serialize_entry<K, V>(&mut self, key: &K, value: &V) -> Result<(), Error>
    where
        K: crate::Serialize + ?Sized,
        V: crate::Serialize + ?Sized,
    {
        let key = match key.serialize(ContentSerializer)? {
            Content::Str(s) => s,
            Content::U64(n) => n.to_string(),
            Content::I64(n) => n.to_string(),
            other => {
                return Err(crate::ser::Error::custom(format!(
                    "map keys must be strings or integers, got {}",
                    other.kind()
                )))
            }
        };
        self.entries
            .push((key, value.serialize(ContentSerializer)?));
        Ok(())
    }
    fn end(self) -> Result<Content, Error> {
        Ok(Content::Map(self.entries))
    }
}

impl crate::ser::SerializeStruct for StructBuilder {
    type Ok = Content;
    type Error = Error;
    fn serialize_field<T: crate::Serialize + ?Sized>(
        &mut self,
        name: &'static str,
        v: &T,
    ) -> Result<(), Error> {
        self.entries
            .push((name.to_string(), v.serialize(ContentSerializer)?));
        Ok(())
    }
    fn end(self) -> Result<Content, Error> {
        let map = Content::Map(self.entries);
        Ok(match self.variant {
            Some(tag) => Content::Map(vec![(tag.to_string(), map)]),
            None => map,
        })
    }
}

impl crate::ser::SerializeStructVariant for StructBuilder {
    type Ok = Content;
    type Error = Error;
    fn serialize_field<T: crate::Serialize + ?Sized>(
        &mut self,
        name: &'static str,
        v: &T,
    ) -> Result<(), Error> {
        crate::ser::SerializeStruct::serialize_field(self, name, v)
    }
    fn end(self) -> Result<Content, Error> {
        crate::ser::SerializeStruct::end(self)
    }
}

impl crate::ser::SerializeTupleVariant for TupleVariantBuilder {
    type Ok = Content;
    type Error = Error;
    fn serialize_field<T: crate::Serialize + ?Sized>(&mut self, v: &T) -> Result<(), Error> {
        self.items.push(v.serialize(ContentSerializer)?);
        Ok(())
    }
    fn end(self) -> Result<Content, Error> {
        Ok(Content::Map(vec![(
            self.variant.to_string(),
            Content::Seq(self.items),
        )]))
    }
}

// ---------------------------------------------------------------------------
// Deserializer: hands out an owned Content tree.
// ---------------------------------------------------------------------------

/// [`crate::Deserializer`] over an owned [`Content`] tree.
#[derive(Debug, Clone)]
pub struct ContentDeserializer(pub Content);

impl ContentDeserializer {
    /// Creates a deserializer over `content`.
    pub fn new(content: Content) -> Self {
        ContentDeserializer(content)
    }
}

impl<'de> crate::Deserializer<'de> for ContentDeserializer {
    type Error = Error;

    fn take_content(self) -> Result<Content, Error> {
        Ok(self.0)
    }
}

/// Deserializes any value from a [`Content`] tree.
pub fn from_content<'de, T: crate::Deserialize<'de>>(content: Content) -> Result<T, Error> {
    T::deserialize(ContentDeserializer(content))
}
