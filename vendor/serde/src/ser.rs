//! Serialization traits, shaped like upstream serde's `ser` module.

use std::fmt::Display;

/// Trait for serialization errors.
pub trait Error: Sized + std::error::Error {
    /// Builds an error from any displayable message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A data structure that can be serialized.
pub trait Serialize {
    /// Serializes `self` with the given serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A format that can serialize the serde data model.
pub trait Serializer: Sized {
    /// Output of a successful serialization.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Sequence sub-serializer.
    type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    /// Tuple sub-serializer.
    type SerializeTuple: SerializeTuple<Ok = Self::Ok, Error = Self::Error>;
    /// Map sub-serializer.
    type SerializeMap: SerializeMap<Ok = Self::Ok, Error = Self::Error>;
    /// Struct sub-serializer.
    type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Tuple-variant sub-serializer.
    type SerializeTupleVariant: SerializeTupleVariant<Ok = Self::Ok, Error = Self::Error>;
    /// Struct-variant sub-serializer.
    type SerializeStructVariant: SerializeStructVariant<Ok = Self::Ok, Error = Self::Error>;

    /// Serializes a `bool`.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    /// Serializes a signed integer.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    /// Serializes an unsigned integer.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a float.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a char.
    fn serialize_char(self, v: char) -> Result<Self::Ok, Self::Error>;
    /// Serializes a string.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    /// Serializes a unit value.
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    /// Serializes `None`.
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    /// Serializes `Some(value)`.
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Self::Ok, Self::Error>;
    /// Serializes a dataless enum variant.
    fn serialize_unit_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
    ) -> Result<Self::Ok, Self::Error>;
    /// Serializes a newtype struct.
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    /// Serializes a single-field enum variant.
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    /// Begins a sequence.
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    /// Begins a tuple.
    fn serialize_tuple(self, len: usize) -> Result<Self::SerializeTuple, Self::Error>;
    /// Begins a map.
    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
    /// Begins a struct.
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
    /// Begins a tuple enum variant.
    fn serialize_tuple_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleVariant, Self::Error>;
    /// Begins a struct enum variant.
    fn serialize_struct_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStructVariant, Self::Error>;
}

/// Sequence serialization.
pub trait SerializeSeq {
    /// Output type.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serializes one element.
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finishes the sequence.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Tuple serialization.
pub trait SerializeTuple {
    /// Output type.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serializes one element.
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finishes the tuple.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Map serialization.
pub trait SerializeMap {
    /// Output type.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serializes one entry.
    fn serialize_entry<K, V>(&mut self, key: &K, value: &V) -> Result<(), Self::Error>
    where
        K: Serialize + ?Sized,
        V: Serialize + ?Sized;
    /// Finishes the map.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Struct serialization.
pub trait SerializeStruct {
    /// Output type.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serializes one named field.
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        name: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Finishes the struct.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Tuple-variant serialization.
pub trait SerializeTupleVariant {
    /// Output type.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serializes one field.
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finishes the variant.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Struct-variant serialization.
pub trait SerializeStructVariant {
    /// Output type.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serializes one named field.
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        name: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Finishes the variant.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

// ---------------------------------------------------------------------------
// Serialize impls for std types.
// ---------------------------------------------------------------------------

macro_rules! serialize_int {
    ($($t:ty => $method:ident as $as:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.$method(*self as $as)
            }
        }
    )*};
}

serialize_int!(
    u8 => serialize_u64 as u64,
    u16 => serialize_u64 as u64,
    u32 => serialize_u64 as u64,
    u64 => serialize_u64 as u64,
    usize => serialize_u64 as u64,
    i8 => serialize_i64 as i64,
    i16 => serialize_i64 as i64,
    i32 => serialize_i64 as i64,
    i64 => serialize_i64 as i64,
    isize => serialize_i64 as i64
);

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_bool(*self)
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_f64(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_f64(*self)
    }
}

impl Serialize for char {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_char(*self)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(self)
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_unit()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => s.serialize_some(v),
            None => s.serialize_none(),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let mut seq = s.serialize_seq(Some(self.len()))?;
        for item in self {
            seq.serialize_element(item)?;
        }
        seq.end()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(s)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(s)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

macro_rules! serialize_tuple {
    ($(($($name:ident . $idx:tt),+) len $len:expr;)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                let mut t = s.serialize_tuple($len)?;
                $( SerializeTuple::serialize_element(&mut t, &self.$idx)?; )+
                t.end()
            }
        }
    )*};
}

serialize_tuple! {
    (A.0) len 1;
    (A.0, B.1) len 2;
    (A.0, B.1, C.2) len 3;
    (A.0, B.1, C.2, D.3) len 4;
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let mut map = s.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_entry(k, v)?;
        }
        map.end()
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::HashMap<K, V> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        // Deterministic output: sort entries by serialized key.
        let mut entries: Vec<(crate::content::Content, &V)> = Vec::with_capacity(self.len());
        for (k, v) in self {
            entries.push((
                k.serialize(crate::content::ContentSerializer)
                    .map_err(S::Error::custom)?,
                v,
            ));
        }
        entries.sort_by(|a, b| format!("{:?}", a.0).cmp(&format!("{:?}", b.0)));
        let mut map = s.serialize_map(Some(self.len()))?;
        for (k, v) in entries {
            map.serialize_entry(&SerializedKey(k), v)?;
        }
        map.end()
    }
}

/// Pre-serialized map key (used by the HashMap impl).
struct SerializedKey(crate::content::Content);

impl Serialize for SerializedKey {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        match &self.0 {
            crate::content::Content::Str(v) => s.serialize_str(v),
            crate::content::Content::U64(v) => s.serialize_u64(*v),
            crate::content::Content::I64(v) => s.serialize_i64(*v),
            other => Err(S::Error::custom(format!(
                "unsupported map key: {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let mut seq = s.serialize_seq(Some(self.len()))?;
        for item in self {
            seq.serialize_element(item)?;
        }
        seq.end()
    }
}
