//! Deserialization traits, shaped like upstream serde's `de` module.
//!
//! Unlike upstream's visitor architecture, the vendored [`Deserializer`] is
//! tree-based: it yields one owned [`Content`] value which `Deserialize`
//! impls traverse directly. Formats buffer into `Content` (exactly what
//! upstream does internally for untagged enums) instead of streaming.

use crate::content::{Content, ContentDeserializer};
use std::fmt::Display;

/// Trait for deserialization errors.
pub trait Error: Sized + std::error::Error {
    /// Builds an error from any displayable message.
    fn custom<T: Display>(msg: T) -> Self;

    /// A required field was absent.
    fn missing_field(field: &'static str) -> Self {
        Self::custom(format!("missing field `{field}`"))
    }

    /// A value had the wrong shape.
    fn invalid_type(expected: &str, got: &Content) -> Self {
        Self::custom(format!(
            "invalid type: expected {expected}, found {}",
            got.kind()
        ))
    }
}

/// A data structure that can be deserialized.
pub trait Deserialize<'de>: Sized {
    /// Deserializes `Self` from the given deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A format that can produce the serde data model.
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: Error;

    /// Yields the complete value as an owned [`Content`] tree.
    fn take_content(self) -> Result<Content, Self::Error>;
}

/// Deserializes a `T` out of an owned [`Content`] subtree, mapping the
/// concrete error into the caller's error type.
pub fn from_subtree<'de, T, E>(content: Content) -> Result<T, E>
where
    T: Deserialize<'de>,
    E: Error,
{
    T::deserialize(ContentDeserializer(content)).map_err(E::custom)
}

// ---------------------------------------------------------------------------
// Deserialize impls for std types.
// ---------------------------------------------------------------------------

macro_rules! deserialize_uint {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                match d.take_content()? {
                    Content::U64(v) => <$t>::try_from(v)
                        .map_err(|_| D::Error::custom(concat!("integer out of range for ", stringify!($t)))),
                    Content::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => {
                        <$t>::try_from(v as u64)
                            .map_err(|_| D::Error::custom(concat!("integer out of range for ", stringify!($t))))
                    }
                    other => Err(D::Error::invalid_type(concat!("a ", stringify!($t)), &other)),
                }
            }
        }
    )*};
}

deserialize_uint!(u8, u16, u32, u64, usize);

macro_rules! deserialize_int {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                match d.take_content()? {
                    Content::I64(v) => <$t>::try_from(v)
                        .map_err(|_| D::Error::custom(concat!("integer out of range for ", stringify!($t)))),
                    Content::U64(v) => <$t>::try_from(v)
                        .map_err(|_| D::Error::custom(concat!("integer out of range for ", stringify!($t)))),
                    Content::F64(v) if v.fract() == 0.0 => Ok(v as $t),
                    other => Err(D::Error::invalid_type(concat!("a ", stringify!($t)), &other)),
                }
            }
        }
    )*};
}

deserialize_int!(i8, i16, i32, i64, isize);

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_content()? {
            Content::Bool(v) => Ok(v),
            other => Err(D::Error::invalid_type("a bool", &other)),
        }
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_content()? {
            Content::F64(v) => Ok(v),
            Content::U64(v) => Ok(v as f64),
            Content::I64(v) => Ok(v as f64),
            // serde_json maps non-finite floats to null; accept the reverse.
            Content::Null => Ok(f64::NAN),
            other => Err(D::Error::invalid_type("an f64", &other)),
        }
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        f64::deserialize(d).map(|v| v as f32)
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_content()? {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(D::Error::invalid_type("a single-char string", &other)),
        }
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_content()? {
            Content::Str(s) => Ok(s),
            other => Err(D::Error::invalid_type("a string", &other)),
        }
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_content()? {
            Content::Null => Ok(()),
            other => Err(D::Error::invalid_type("null", &other)),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_content()? {
            Content::Null => Ok(None),
            other => from_subtree(other).map(Some),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_content()? {
            Content::Seq(items) => items.into_iter().map(from_subtree).collect(),
            other => Err(D::Error::invalid_type("a sequence", &other)),
        }
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let items: Vec<T> = Vec::deserialize(d)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| D::Error::custom(format!("expected array of length {N}, found {len}")))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        T::deserialize(d).map(Box::new)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for std::sync::Arc<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        T::deserialize(d).map(std::sync::Arc::new)
    }
}

macro_rules! deserialize_tuple {
    ($(($($name:ident),+) len $len:expr;)*) => {$(
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<__D: Deserializer<'de>>(d: __D) -> Result<Self, __D::Error> {
                match d.take_content()? {
                    Content::Seq(items) if items.len() == $len => {
                        let mut it = items.into_iter();
                        Ok(($( from_subtree::<$name, __D::Error>(it.next().unwrap())?, )+))
                    }
                    other => Err(__D::Error::invalid_type(
                        concat!("a tuple of length ", stringify!($len)),
                        &other,
                    )),
                }
            }
        }
    )*};
}

deserialize_tuple! {
    (A) len 1;
    (A, B) len 2;
    (A, B, C) len 3;
    (A, B, C, D) len 4;
}

impl<'de, K, V> Deserialize<'de> for std::collections::BTreeMap<K, V>
where
    K: Deserialize<'de> + Ord,
    V: Deserialize<'de>,
{
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        Ok(map_entries(d)?.into_iter().collect())
    }
}

impl<'de, K, V> Deserialize<'de> for std::collections::HashMap<K, V>
where
    K: Deserialize<'de> + std::hash::Hash + Eq,
    V: Deserialize<'de>,
{
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        Ok(map_entries(d)?.into_iter().collect())
    }
}

impl<'de, T: Deserialize<'de> + Ord> Deserialize<'de> for std::collections::BTreeSet<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_content()? {
            Content::Seq(items) => items.into_iter().map(from_subtree).collect(),
            other => Err(D::Error::invalid_type("a sequence", &other)),
        }
    }
}

/// Decodes a map's entries, parsing each string key back through `K`'s
/// deserializer (integer-keyed maps arrive with stringified keys).
fn map_entries<'de, K, V, D>(d: D) -> Result<Vec<(K, V)>, D::Error>
where
    K: Deserialize<'de>,
    V: Deserialize<'de>,
    D: Deserializer<'de>,
{
    match d.take_content()? {
        Content::Map(entries) => entries
            .into_iter()
            .map(|(k, v)| {
                // Try the key as a string first; integer-keyed maps arrive
                // with stringified keys, so fall back to a numeric parse.
                let key = match from_subtree::<K, D::Error>(Content::Str(k.clone())) {
                    Ok(key) => key,
                    Err(string_err) => {
                        let numeric = match k.parse::<u64>() {
                            Ok(n) => Content::U64(n),
                            Err(_) => match k.parse::<i64>() {
                                Ok(n) => Content::I64(n),
                                Err(_) => return Err(string_err),
                            },
                        };
                        from_subtree::<K, D::Error>(numeric)?
                    }
                };
                let value = from_subtree::<V, D::Error>(v)?;
                Ok((key, value))
            })
            .collect(),
        other => Err(D::Error::invalid_type("a map", &other)),
    }
}
