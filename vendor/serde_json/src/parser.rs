//! JSON text → Content.

use crate::Error;
use serde::content::Content;

/// Parses one JSON document (surrounding whitespace allowed).
pub fn parse(s: &str) -> Result<Content, Error> {
    let bytes = s.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error(format!("trailing characters at byte {pos}")));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Content, Error> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(Error("unexpected end of input".into())),
        Some(b'n') => expect_literal(b, pos, "null", Content::Null),
        Some(b't') => expect_literal(b, pos, "true", Content::Bool(true)),
        Some(b'f') => expect_literal(b, pos, "false", Content::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Content::Str),
        Some(b'[') => parse_array(b, pos),
        Some(b'{') => parse_object(b, pos),
        Some(c) if *c == b'-' || c.is_ascii_digit() => parse_number(b, pos),
        Some(c) => Err(Error(format!(
            "unexpected character {:?} at byte {}",
            *c as char, pos
        ))),
    }
}

fn expect_literal(b: &[u8], pos: &mut usize, lit: &str, value: Content) -> Result<Content, Error> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(Error(format!("invalid literal at byte {pos}")))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, Error> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(Error("unterminated string".into())),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| Error("truncated \\u escape".into()))?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| Error("bad \\u escape".into()))?,
                            16,
                        )
                        .map_err(|_| Error("bad \\u escape".into()))?;
                        // Surrogate pairs are not needed for this workspace's
                        // data; map lone surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(Error(format!("bad escape {other:?}"))),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let rest = std::str::from_utf8(&b[*pos..])
                    .map_err(|_| Error("invalid UTF-8 in string".into()))?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Content, Error> {
    let start = *pos;
    if b[*pos] == b'-' {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).expect("ascii number");
    let is_integral = !text.contains(['.', 'e', 'E']);
    if is_integral {
        if let Ok(v) = text.parse::<u64>() {
            return Ok(Content::U64(v));
        }
        if let Ok(v) = text.parse::<i64>() {
            return Ok(Content::I64(v));
        }
    }
    text.parse::<f64>()
        .map(Content::F64)
        .map_err(|_| Error(format!("invalid number {text:?}")))
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Content, Error> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Content::Seq(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Content::Seq(items));
            }
            _ => return Err(Error(format!("expected ',' or ']' at byte {pos}"))),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Content, Error> {
    *pos += 1; // '{'
    let mut entries = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Content::Map(entries));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(Error(format!("expected object key at byte {pos}")));
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(Error(format!("expected ':' at byte {pos}")));
        }
        *pos += 1;
        let value = parse_value(b, pos)?;
        entries.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Content::Map(entries));
            }
            _ => return Err(Error(format!("expected ',' or '}}' at byte {pos}"))),
        }
    }
}
