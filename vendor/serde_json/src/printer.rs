//! Content → JSON text.

use serde::content::Content;

/// Prints `content` as JSON; `indent = Some(level)` pretty-prints.
pub fn print(content: &Content, indent: Option<usize>) -> String {
    let mut out = String::new();
    write_value(&mut out, content, indent);
    out
}

fn write_value(out: &mut String, content: &Content, indent: Option<usize>) {
    match content {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => write_f64(out, *v),
        Content::Str(s) => write_string(out, s),
        Content::Seq(items) => write_seq(out, items, indent),
        Content::Map(entries) => write_map(out, entries, indent),
    }
}

fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // `{:?}` is Rust's shortest round-trip representation.
        let s = format!("{v:?}");
        out.push_str(&s);
    } else {
        // Upstream serde_json prints non-finite floats as null.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_seq(out: &mut String, items: &[Content], indent: Option<usize>) {
    if items.is_empty() {
        out.push_str("[]");
        return;
    }
    out.push('[');
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        newline(out, indent.map(|n| n + 1));
        write_value(out, item, indent.map(|n| n + 1));
    }
    newline(out, indent);
    out.push(']');
}

fn write_map(out: &mut String, entries: &[(String, Content)], indent: Option<usize>) {
    if entries.is_empty() {
        out.push_str("{}");
        return;
    }
    out.push('{');
    for (i, (k, v)) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        newline(out, indent.map(|n| n + 1));
        write_string(out, k);
        out.push(':');
        if indent.is_some() {
            out.push(' ');
        }
        write_value(out, v, indent.map(|n| n + 1));
    }
    newline(out, indent);
    out.push('}');
}

fn newline(out: &mut String, indent: Option<usize>) {
    if let Some(level) = indent {
        out.push('\n');
        for _ in 0..level {
            out.push_str("  ");
        }
    }
}
