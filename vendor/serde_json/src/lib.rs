//! Minimal, dependency-free stand-in for `serde_json`.
//!
//! Serializes any [`serde::Serialize`] type to JSON text and back, via the
//! vendored serde's [`Content`] tree. Numbers are printed with `{:?}`
//! (Rust's shortest round-trip float formatting), so `to_string` followed
//! by `from_str` reproduces every finite `f64` bit-for-bit. Non-finite
//! floats are printed as `null`, matching upstream serde_json.

use serde::content::{from_content, to_content, Content};

mod parser;
mod printer;

pub use parser::parse;

/// Error type for JSON serialization/deserialization.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let content = to_content(value).map_err(|e| Error(e.0))?;
    Ok(printer::print(&content, None))
}

/// Serializes `value` to an indented JSON string.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let content = to_content(value).map_err(|e| Error(e.0))?;
    Ok(printer::print(&content, Some(0)))
}

/// Deserializes a `T` from JSON text.
pub fn from_str<'de, T: serde::Deserialize<'de>>(s: &str) -> Result<T> {
    let content = parser::parse(s)?;
    from_content(content).map_err(|e| Error(e.0))
}

/// Parses JSON text into the generic [`Content`] tree.
pub fn from_str_content(s: &str) -> Result<Content> {
    parser::parse(s)
}
