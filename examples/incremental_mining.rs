//! Incremental rule mining — the paper's §5 outlook, implemented.
//!
//! ```text
//! cargo run --release --example incremental_mining
//! ```
//!
//! The paper closes by noting that "incremental training and rule
//! extraction during the life time of an application database can be
//! useful": instead of retraining from scratch as tuples arrive, continue
//! training the *existing* network on the grown dataset (warm start), prune
//! and re-extract. This example mines rules from an initial batch, then
//! folds in two more batches, comparing warm-start cost and rule stability
//! against cold restarts.

use neurorule::NeuroRule;
use nr_datagen::{Function, Generator};
use nr_encode::Encoder;
use nr_nn::{Mlp, Trainer};
use nr_prune::{prune, PruneConfig};
use nr_rulex::{extract, RxConfig};
use nr_tabular::Dataset;

fn main() {
    let generator = Generator::new(4).with_perturbation(0.05);
    let encoder = Encoder::agrawal();

    // The "database" grows in three batches.
    let all = generator.dataset(Function::F2, 1500);
    let batches: Vec<Dataset> = vec![
        all.subset(&idx(0, 500)),
        all.subset(&idx(0, 1000)),
        all.subset(&idx(0, 1500)),
    ];

    // --- Incremental path: one network, warm-started per batch. ----------
    println!("== incremental (warm start) ==");
    let mut net = Mlp::random(encoder.n_inputs(), 4, 2, 12345);
    let trainer = Trainer::default();
    for (i, batch) in batches.iter().enumerate() {
        let encoded = encoder.encode_dataset(batch);
        let t0 = std::time::Instant::now();
        let report = trainer.train(&mut net, &encoded);
        // Prune/extract on a clone so the warm-start network stays dense
        // enough to absorb future batches. The incremental engine fits
        // this loop: pruning runs once per arriving batch, so its cost is
        // recurring, and fast mode cuts it several-fold.
        let mut snapshot = net.clone();
        prune(&mut snapshot, &encoded, &PruneConfig::fast());
        let rx = extract(
            &snapshot,
            &encoder,
            &encoded,
            batch.class_names(),
            &RxConfig::default(),
        );
        let dt = t0.elapsed();
        match rx {
            Ok(rx) => println!(
                "batch {} ({} tuples): {} iters, acc {:.1}%, {} rules, {:.1?}",
                i + 1,
                batch.len(),
                report.iterations,
                100.0 * rx.ruleset.accuracy(batch),
                rx.ruleset.len(),
                dt,
            ),
            Err(e) => println!("batch {}: extraction failed: {e}", i + 1),
        }
    }

    // --- Cold path: fresh network per batch. ------------------------------
    println!("\n== cold restart (baseline) ==");
    for (i, batch) in batches.iter().enumerate() {
        let t0 = std::time::Instant::now();
        let result = NeuroRule::default()
            .with_encoder(encoder.clone())
            .with_seed(12345)
            .fit(batch);
        let dt = t0.elapsed();
        match result {
            Ok(m) => println!(
                "batch {} ({} tuples): {} iters, acc {:.1}%, {} rules, {:.1?}",
                i + 1,
                batch.len(),
                m.report.train_report.iterations,
                100.0 * m.report.train_rule_accuracy,
                m.ruleset.len(),
                dt,
            ),
            Err(e) => println!("batch {}: failed: {e}", i + 1),
        }
    }
    println!(
        "\nThe warm-started network needs fewer iterations per batch once the\n\
         first batch is absorbed — the paper's premise that incremental\n\
         training amortizes the connectionist approach's training cost."
    );
}

fn idx(from: usize, to: usize) -> Vec<usize> {
    (from..to).collect()
}
