//! Using NeuroRule on your own data (no Agrawal generator involved).
//!
//! ```text
//! cargo run --release --example custom_dataset
//! ```
//!
//! Builds a small "machine triage" dataset by hand — two numeric sensors
//! and a nominal vendor column — and lets the pipeline fit a *generic*
//! equal-width encoder ([`nr_encode::Encoder::fit`]) instead of the paper's
//! hand-crafted Table-2 coding. This is the path a downstream user takes
//! for arbitrary tabular data.

use neurorule::NeuroRule;
use nr_rules::Predictor;
use nr_tabular::{Attribute, Dataset, Schema, Value};

/// Ground truth the example mines back: a machine needs service when it is
/// hot AND vibrating, or when it comes from the flaky vendor "gamma" and is
/// hot.
fn needs_service(temp: f64, vibration: f64, vendor: u32) -> bool {
    temp >= 70.0 && (vibration >= 0.5 || vendor == 2)
}

fn main() {
    let schema = Schema::new(vec![
        Attribute::numeric("temperature"),
        Attribute::numeric("vibration"),
        Attribute::nominal("vendor", ["alpha", "beta", "gamma"]),
    ]);
    let mut train = Dataset::new(schema, vec!["service".into(), "ok".into()]);

    // Deterministic grid "sensor log".
    for i in 0..900 {
        let temp = 20.0 + (i % 30) as f64 * 2.8; // 20..101
        let vibration = ((i / 30) % 10) as f64 / 10.0; // 0.0..0.9
        let vendor = (i % 3) as u32;
        let label = usize::from(!needs_service(temp, vibration, vendor));
        train
            .push(
                vec![
                    Value::Num(temp),
                    Value::Num(vibration),
                    Value::Nominal(vendor),
                ],
                label,
            )
            .expect("row matches schema");
    }

    // Generic encoder: equal-width thermometer bins for numerics, one-hot
    // for the vendor. More bins = finer thresholds in the rules.
    let model = NeuroRule::default()
        .with_encoder_bins(8)
        .with_hidden_nodes(5)
        // Seed chosen to converge: the default init lands in a local
        // minimum on this small grid dataset.
        .with_seed(1)
        .fit(&train)
        .expect("pipeline succeeds");

    println!("mined triage rules:");
    print!("{}", model.ruleset.display(train.schema()));
    println!(
        "\ntrain accuracy: rules {:.1}% | network {:.1}%",
        100.0 * model.rules_accuracy(&train),
        100.0 * model.network_accuracy(&train),
    );
    println!(
        "inputs the pruned network still reads: {} of {}",
        model.network.used_inputs().len(),
        model.encoder.n_inputs(),
    );

    // Sanity-check the rules on points we know the answer for, through
    // the compiled serving engine: an unlabeled probe batch — exactly
    // what a scoring service receives.
    let served = model.compile();
    let mut probe = Dataset::new(train.schema().clone(), train.class_names().to_vec());
    for (temp, vibration, vendor) in [(85.0, 0.8, 0u32), (30.0, 0.2, 1)] {
        probe
            .push_unlabeled(vec![
                Value::Num(temp),
                Value::Num(vibration),
                Value::Nominal(vendor),
            ])
            .expect("probe row matches schema");
    }
    let answers = served.predict_batch(&probe.view());
    println!(
        "\nhot+vibrating alpha machine -> {}",
        train.class_names()[answers[0]]
    );
    println!(
        "cool beta machine          -> {}",
        train.class_names()[answers[1]]
    );
}
