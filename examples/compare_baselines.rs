//! NeuroRule vs C4.5: the paper's §4 comparison on several functions.
//!
//! ```text
//! cargo run --release --example compare_baselines [functions...]
//! cargo run --release --example compare_baselines 1 2 3
//! ```
//!
//! For each function: train both learners on 1000 tuples, compare test
//! accuracy and rule-set size. Expected shape (the paper's claim): similar
//! accuracy, but NeuroRule's rule sets are materially smaller on functions
//! with strong attribute interactions (F2, F4).

use neurorule::NeuroRule;
use nr_datagen::{Function, Generator};
use nr_encode::Encoder;
use nr_tree::{to_rules, DecisionTree, TreeConfig};

fn main() {
    let args: Vec<usize> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();
    let functions: Vec<Function> = if args.is_empty() {
        vec![Function::F1, Function::F2, Function::F3, Function::F4]
    } else {
        args.iter()
            .filter_map(|&n| Function::from_number(n))
            .collect()
    };

    let generator = Generator::new(42).with_perturbation(0.05);
    println!(
        "{:<5} | {:>9} {:>7} {:>7} | {:>9} {:>7} {:>7}",
        "func", "NR-rules", "train%", "test%", "C45-rules", "train%", "test%"
    );
    for f in functions {
        let (train, test) = generator.train_test(f, 1000, 1000);

        let nr = NeuroRule::default()
            .with_encoder(Encoder::agrawal())
            .fit(&train);
        let tree = DecisionTree::fit(&train, &TreeConfig::default());
        let c45 = to_rules(&tree, &train);

        match nr {
            Ok(model) => println!(
                "{:<5} | {:>9} {:>7.1} {:>7.1} | {:>9} {:>7.1} {:>7.1}",
                f.to_string(),
                model.ruleset.len(),
                100.0 * model.rules_accuracy(&train),
                100.0 * model.rules_accuracy(&test),
                c45.len(),
                100.0 * c45.accuracy(&train),
                100.0 * c45.accuracy(&test),
            ),
            Err(e) => println!("{:<5} | pipeline failed: {e}", f.to_string()),
        }
    }
}
