//! Mining a loan-approval policy — the paper's motivating scenario.
//!
//! ```text
//! cargo run --release --example credit_policy
//! ```
//!
//! Function 7 of the Agrawal benchmark models a disposable-income rule:
//! approve (Group A) when `⅔·(salary+commission) − loan/5 − 20000 > 0`.
//! A bank holding millions of historical decisions wants that policy back
//! as *auditable rules*, not as a black-box scorer. This example mines the
//! rules, shows how they can be turned into database queries, and checks
//! them against fresh data.

use neurorule::NeuroRule;
use nr_datagen::{Function, Generator};
use nr_encode::Encoder;
use nr_rules::{evaluate_rules, Predictor};
use nr_serve::{ServeMode, ServeModel};

fn main() {
    let generator = Generator::new(7).with_perturbation(0.05);
    let (history, tomorrow) = generator.train_test(Function::F7, 1000, 5000);

    let model = NeuroRule::default()
        .with_encoder(Encoder::agrawal())
        .fit(&history)
        .expect("pipeline succeeds");

    println!("mined approval policy ({} rules):", model.ruleset.len());
    print!("{}", model.ruleset.display(history.schema()));

    // The paper's point (§1): explicit rules map directly onto indexable
    // database queries. Render each rule as SQL.
    println!("\nas SQL over the application database:");
    for (i, rule) in model.ruleset.rules.iter().enumerate() {
        let class = &model.ruleset.class_names[rule.class];
        let conds: Vec<String> = rule
            .conditions
            .iter()
            .map(|c| c.display(history.schema()).replace("and", "AND"))
            .collect();
        println!(
            "  -- rule {}\n  SELECT * FROM applicants WHERE {} ; -- => {class}",
            i + 1,
            conds.join(" AND ")
        );
    }

    // Audit the rules on unseen applications, per rule (Table-3 style).
    println!("\nper-rule audit on 5000 unseen applications:");
    println!("{:<6} {:>8} {:>9}", "rule", "matched", "correct%");
    for stats in evaluate_rules(&model.ruleset, &tomorrow) {
        println!(
            "R{:<5} {:>8} {:>8.1}%",
            stats.rule + 1,
            stats.total,
            stats.correct_pct()
        );
    }
    println!(
        "\noverall: rules {:.1}% vs network {:.1}% on unseen data",
        100.0 * model.rules_accuracy(&tomorrow),
        100.0 * model.network_accuracy(&tomorrow),
    );

    // Deploy: persist the compiled policy, load it in the "scoring
    // service", and batch-score tomorrow's applications. Hybrid mode
    // answers from the audited rules and only consults the network for
    // applicants no explicit rule covers.
    let path = std::env::temp_dir().join("credit_policy.json");
    model
        .compile()
        .with_mode(ServeMode::Hybrid)
        .save(&path)
        .expect("policy saves");
    let service = ServeModel::load(&path).expect("policy loads without retraining");
    std::fs::remove_file(&path).ok();
    let decisions = service.predict_scored_batch(&tomorrow.view());
    let by_rules = decisions.iter().filter(|d| d.score == 1.0).count();
    println!(
        "served {} decisions from the reloaded policy: {} by explicit rule, \
         {} by network fallback",
        decisions.len(),
        by_rules,
        decisions.len() - by_rules,
    );
}
