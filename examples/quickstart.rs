//! Quickstart: mine classification rules from a synthetic database.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Generates the paper's Function-2 benchmark (1000 training tuples, 5%
//! perturbation), runs the full NeuroRule pipeline — train a neural network,
//! prune it, extract rules — prints the rules with their accuracy, and
//! compiles the model into the batch serving engine.

use neurorule::NeuroRule;
use nr_datagen::{Function, Generator};
use nr_encode::Encoder;
use nr_rules::Predictor;

fn main() {
    // 1. Data: the Agrawal et al. synthetic benchmark from the paper.
    let generator = Generator::new(42).with_perturbation(0.05);
    let (train, test) = generator.train_test(Function::F2, 1000, 1000);
    println!(
        "training on {} tuples ({} Group A / {} Group B)",
        train.len(),
        train.class_distribution()[0],
        train.class_distribution()[1],
    );

    // 2. The pipeline: defaults follow the paper (4 hidden nodes, BFGS with
    //    weight-decay penalty, 90% pruning floor, clustering eps = 0.6).
    let model = NeuroRule::default()
        .with_encoder(Encoder::agrawal())
        .fit(&train)
        .expect("the pipeline succeeds on this benchmark");

    // 3. The deliverable: explicit classification rules.
    println!("\nextracted rules:");
    print!("{}", model.ruleset.display(train.schema()));

    println!("\nhow we got here:");
    let report = &model.report;
    println!(
        "  phase 1 (train): loss {:.2}, accuracy {:.1}%",
        report.train_report.loss,
        100.0 * report.train_report.accuracy
    );
    println!(
        "  phase 2 (prune): {} of {} links kept, {} hidden nodes live",
        report.prune_outcome.remaining_links,
        report.prune_outcome.initial_links,
        model.network.live_hidden().len(),
    );
    println!(
        "  phase 3 (extract): eps {:.2}, clusters {:?}, {} rules",
        report.rx_trace.epsilon,
        report.rx_trace.cluster_counts,
        model.ruleset.len()
    );

    println!(
        "\naccuracy: train {:.1}%  test {:.1}%  (network: {:.1}% / {:.1}%)",
        100.0 * model.rules_accuracy(&train),
        100.0 * model.rules_accuracy(&test),
        100.0 * model.network_accuracy(&train),
        100.0 * model.network_accuracy(&test),
    );
    println!(
        "rule/network fidelity on the test set: {:.1}%",
        100.0 * model.fidelity(&test)
    );

    // 4. Serving: compile once, score whole batches through the
    //    `Predictor` trait. The compiled engine is immutable — wrap it in
    //    an `Arc` to share across scoring threads, or `save()` it and
    //    `ServeModel::load()` in a serving process (no retraining).
    let served = model.compile();
    let t0 = std::time::Instant::now();
    let classes = served.predict_batch(&test.view());
    println!(
        "\nserving: scored {} tuples in {:.2?} with the compiled rules \
         ({} approved as Group A)",
        classes.len(),
        t0.elapsed(),
        classes.iter().filter(|&&c| c == 0).count(),
    );
}
